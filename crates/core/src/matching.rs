//! Image matching: from matched region pairs to a similarity score
//! (paper §4 and §5.5).
//!
//! Input: the regions of a query image `Q` and a target image `T`, plus the
//! list of matching pairs `(Qᵢ, Tⱼ)` produced by the index probe. Output:
//! the Definition 4.3 similarity — the fraction of the two images' combined
//! area covered by a similar region pair set — under one of three
//! algorithms:
//!
//! * [`score_quick`] — union all matched regions' bitmaps on each side.
//!   Linear in the pair count; relaxes the one-to-one requirement of
//!   Definition 4.2 (a region may "pay" for several partners). This is what
//!   the paper uses in §6.4.
//! * [`score_greedy`] — the `O(n²)` heuristic for the one-to-one
//!   constrained problem: repeatedly commit the pair with the largest
//!   marginal covered-area gain.
//! * [`score_exact`] — exhaustive branch-and-bound over one-to-one pair
//!   subsets. The underlying problem is NP-hard (Theorem 5.1); this exists
//!   to measure the greedy gap on small instances and must be capped by the
//!   caller.

use crate::bitmap::RegionBitmap;
use crate::params::{MatchingKind, SimilarityKind, WalrusParams};
use crate::region::Region;

/// One matched region pair: indices into the query / target region lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchPair {
    /// Query region index.
    pub q: usize,
    /// Target region index.
    pub t: usize,
}

/// The outcome of image matching.
#[derive(Debug, Clone)]
pub struct MatchScore {
    /// Similarity under the requested [`SimilarityKind`], in `[0, 1]`.
    pub similarity: f64,
    /// Query-image pixels covered by the selected regions.
    pub covered_query_area: usize,
    /// Target-image pixels covered by the selected regions.
    pub covered_target_area: usize,
    /// The pairs the algorithm committed to (for quick matching: all input
    /// pairs).
    pub pairs_used: Vec<MatchPair>,
}

fn finish(
    kind: SimilarityKind,
    covered_q: usize,
    covered_t: usize,
    q_area: usize,
    t_area: usize,
    pairs_used: Vec<MatchPair>,
) -> MatchScore {
    let similarity = match kind {
        SimilarityKind::Symmetric => (covered_q + covered_t) as f64 / (q_area + t_area) as f64,
        SimilarityKind::QueryFraction => covered_q as f64 / q_area as f64,
        SimilarityKind::MinImage => {
            (covered_q + covered_t) as f64 / (2 * q_area.min(t_area)) as f64
        }
    };
    MatchScore {
        similarity: similarity.clamp(0.0, 1.0),
        covered_query_area: covered_q,
        covered_target_area: covered_t,
        pairs_used,
    }
}

/// Quick-union matching (paper §5.5, "the quickest similarity metric").
pub fn score_quick(
    q_regions: &[Region],
    t_regions: &[Region],
    pairs: &[MatchPair],
    q_area: usize,
    t_area: usize,
    kind: SimilarityKind,
) -> MatchScore {
    if pairs.is_empty() {
        return finish(kind, 0, 0, q_area, t_area, Vec::new());
    }
    let mut q_acc: Option<RegionBitmap> = None;
    let mut t_acc: Option<RegionBitmap> = None;
    let mut q_seen = vec![false; q_regions.len()];
    let mut t_seen = vec![false; t_regions.len()];
    for p in pairs {
        if !q_seen[p.q] {
            q_seen[p.q] = true;
            match &mut q_acc {
                Some(acc) => acc.union_in_place(&q_regions[p.q].bitmap),
                None => q_acc = Some(q_regions[p.q].bitmap.clone()),
            }
        }
        if !t_seen[p.t] {
            t_seen[p.t] = true;
            match &mut t_acc {
                Some(acc) => acc.union_in_place(&t_regions[p.t].bitmap),
                None => t_acc = Some(t_regions[p.t].bitmap.clone()),
            }
        }
    }
    let covered_q = q_acc.map_or(0, |b| b.area());
    let covered_t = t_acc.map_or(0, |b| b.area());
    finish(kind, covered_q, covered_t, q_area, t_area, pairs.to_vec())
}

/// Greedy one-to-one matching (paper §5.5): `O(n²)` in the pair count.
pub fn score_greedy(
    q_regions: &[Region],
    t_regions: &[Region],
    pairs: &[MatchPair],
    q_area: usize,
    t_area: usize,
    kind: SimilarityKind,
) -> MatchScore {
    if pairs.is_empty() {
        return finish(kind, 0, 0, q_area, t_area, Vec::new());
    }
    let mut q_used = vec![false; q_regions.len()];
    let mut t_used = vec![false; t_regions.len()];
    let mut remaining: Vec<MatchPair> = pairs.to_vec();
    // Accumulators must share the source bitmaps' layout exactly.
    let mut q_acc = q_regions[0].bitmap.clone();
    zero_bitmap(&mut q_acc);
    let mut t_acc = t_regions[0].bitmap.clone();
    zero_bitmap(&mut t_acc);

    let mut covered = 0usize;
    let mut chosen = Vec::new();
    while !remaining.is_empty() {
        // Find the pair with the largest marginal covered-area gain.
        let mut best: Option<(usize, usize)> = None; // (pair index, gain)
        for (i, p) in remaining.iter().enumerate() {
            let gain_q = q_acc.union_area(&q_regions[p.q].bitmap) - q_acc.area();
            let gain_t = t_acc.union_area(&t_regions[p.t].bitmap) - t_acc.area();
            let gain = gain_q + gain_t;
            if best.map_or(true, |(_, g)| gain > g) {
                best = Some((i, gain));
            }
        }
        let (idx, gain) = best.expect("remaining is non-empty");
        let p = remaining.swap_remove(idx);
        q_used[p.q] = true;
        t_used[p.t] = true;
        q_acc.union_in_place(&q_regions[p.q].bitmap);
        t_acc.union_in_place(&t_regions[p.t].bitmap);
        covered += gain;
        chosen.push(p);
        // One-to-one: drop every pair that reuses a committed region.
        remaining.retain(|r| !q_used[r.q] && !t_used[r.t]);
    }
    debug_assert_eq!(covered, q_acc.area() + t_acc.area());
    finish(kind, q_acc.area(), t_acc.area(), q_area, t_area, chosen)
}

/// Exact one-to-one matching by branch-and-bound over pair subsets.
/// Exponential in the worst case — callers must cap the pair count (see
/// [`WalrusParams::exact_pair_limit`]).
pub fn score_exact(
    q_regions: &[Region],
    t_regions: &[Region],
    pairs: &[MatchPair],
    q_area: usize,
    t_area: usize,
    kind: SimilarityKind,
) -> MatchScore {
    if pairs.is_empty() {
        return finish(kind, 0, 0, q_area, t_area, Vec::new());
    }
    struct Search<'a> {
        q_regions: &'a [Region],
        t_regions: &'a [Region],
        pairs: &'a [MatchPair],
        // Individual pair upper-bound contributions, suffix-summed.
        suffix_bound: Vec<usize>,
        best_covered: usize,
        best_q: usize,
        best_t: usize,
        best_set: Vec<MatchPair>,
    }

    impl Search<'_> {
        fn dfs(
            &mut self,
            i: usize,
            q_used: &mut Vec<bool>,
            t_used: &mut Vec<bool>,
            q_acc: &RegionBitmap,
            t_acc: &RegionBitmap,
            chosen: &mut Vec<MatchPair>,
        ) {
            let covered = q_acc.area() + t_acc.area();
            if covered > self.best_covered {
                self.best_covered = covered;
                self.best_q = q_acc.area();
                self.best_t = t_acc.area();
                self.best_set = chosen.clone();
            }
            if i == self.pairs.len() {
                return;
            }
            // Admissible bound: every remaining pair contributes at most its
            // regions' full areas.
            if covered + self.suffix_bound[i] <= self.best_covered {
                return;
            }
            let p = self.pairs[i];
            // Branch 1: take the pair if legal.
            if !q_used[p.q] && !t_used[p.t] {
                q_used[p.q] = true;
                t_used[p.t] = true;
                let q_next = q_acc.union(&self.q_regions[p.q].bitmap);
                let t_next = t_acc.union(&self.t_regions[p.t].bitmap);
                chosen.push(p);
                self.dfs(i + 1, q_used, t_used, &q_next, &t_next, chosen);
                chosen.pop();
                q_used[p.q] = false;
                t_used[p.t] = false;
            }
            // Branch 2: skip the pair.
            self.dfs(i + 1, q_used, t_used, q_acc, t_acc, chosen);
        }
    }

    let mut suffix_bound = vec![0usize; pairs.len() + 1];
    for i in (0..pairs.len()).rev() {
        suffix_bound[i] = suffix_bound[i + 1]
            + q_regions[pairs[i].q].area()
            + t_regions[pairs[i].t].area();
    }
    let mut q_acc = q_regions[0].bitmap.clone();
    zero_bitmap(&mut q_acc);
    let mut t_acc = t_regions[0].bitmap.clone();
    zero_bitmap(&mut t_acc);
    let mut search = Search {
        q_regions,
        t_regions,
        pairs,
        suffix_bound,
        best_covered: 0,
        best_q: 0,
        best_t: 0,
        best_set: Vec::new(),
    };
    let mut q_used = vec![false; q_regions.len()];
    let mut t_used = vec![false; t_regions.len()];
    let mut chosen = Vec::new();
    search.dfs(0, &mut q_used, &mut t_used, &q_acc, &t_acc, &mut chosen);
    finish(kind, search.best_q, search.best_t, q_area, t_area, search.best_set)
}

/// Dispatcher: runs the matching algorithm selected by `params`, degrading
/// `Exact` to greedy above `params.exact_pair_limit` pairs.
pub fn score(
    params: &WalrusParams,
    q_regions: &[Region],
    t_regions: &[Region],
    pairs: &[MatchPair],
    q_area: usize,
    t_area: usize,
) -> MatchScore {
    match params.matching {
        MatchingKind::Quick => {
            score_quick(q_regions, t_regions, pairs, q_area, t_area, params.similarity)
        }
        MatchingKind::Greedy => {
            score_greedy(q_regions, t_regions, pairs, q_area, t_area, params.similarity)
        }
        MatchingKind::Exact if pairs.len() <= params.exact_pair_limit => {
            score_exact(q_regions, t_regions, pairs, q_area, t_area, params.similarity)
        }
        MatchingKind::Exact => {
            score_greedy(q_regions, t_regions, pairs, q_area, t_area, params.similarity)
        }
    }
}

fn zero_bitmap(b: &mut RegionBitmap) {
    let empty = RegionBitmap::new(b.width(), b.height(), b.grid_width().max(b.grid_height()));
    // Layout equality holds because grid dims derive from the same inputs.
    debug_assert_eq!(empty.grid_width(), b.grid_width());
    debug_assert_eq!(empty.grid_height(), b.grid_height());
    *b = empty;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a region covering the given pixel rectangle of a 64×64 image.
    fn region(x: usize, y: usize, w: usize, h: usize) -> Region {
        let mut bitmap = RegionBitmap::new(64, 64, 16);
        bitmap.mark_window(x, y, w, h);
        Region::new(vec![0.0; 4], vec![0.0; 4], vec![0.0; 4], bitmap, 1)
    }

    const AREA: usize = 64 * 64;

    #[test]
    fn no_pairs_means_zero_similarity() {
        let q = [region(0, 0, 16, 16)];
        let t = [region(0, 0, 16, 16)];
        for f in [score_quick, score_greedy, score_exact] {
            let s = f(&q, &t, &[], AREA, AREA, SimilarityKind::Symmetric);
            assert_eq!(s.similarity, 0.0);
            assert!(s.pairs_used.is_empty());
        }
    }

    #[test]
    fn full_cover_is_similarity_one() {
        let q = [region(0, 0, 64, 64)];
        let t = [region(0, 0, 64, 64)];
        let pairs = [MatchPair { q: 0, t: 0 }];
        let s = score_quick(&q, &t, &pairs, AREA, AREA, SimilarityKind::Symmetric);
        assert!((s.similarity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_similarity_formula() {
        // Query region covers 1/4 of Q, target region covers 1/4 of T.
        let q = [region(0, 0, 32, 32)];
        let t = [region(32, 32, 32, 32)];
        let pairs = [MatchPair { q: 0, t: 0 }];
        let s = score_quick(&q, &t, &pairs, AREA, AREA, SimilarityKind::Symmetric);
        assert!((s.similarity - 0.25).abs() < 1e-12);
        assert_eq!(s.covered_query_area, 1024);
        assert_eq!(s.covered_target_area, 1024);
    }

    #[test]
    fn query_fraction_variant() {
        let q = [region(0, 0, 32, 64)]; // half of Q
        let t = [region(0, 0, 8, 8)];
        let pairs = [MatchPair { q: 0, t: 0 }];
        let s = score_quick(&q, &t, &pairs, AREA, AREA, SimilarityKind::QueryFraction);
        assert!((s.similarity - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_image_variant() {
        let q = [region(0, 0, 32, 32)];
        let t = [region(0, 0, 32, 32)];
        let pairs = [MatchPair { q: 0, t: 0 }];
        // Pretend T is a quarter-size image.
        let s = score_quick(&q, &t, &pairs, AREA, AREA / 4, SimilarityKind::MinImage);
        assert!((s.similarity - (1024.0 + 1024.0) / (2.0 * 1024.0)).abs() < 1e-12);
        // Clamped at 1.
        assert!(s.similarity <= 1.0);
    }

    #[test]
    fn quick_counts_each_region_once() {
        // One query region matching two target regions: Q's bitmap must not
        // be double counted.
        let q = [region(0, 0, 32, 32)];
        let t = [region(0, 0, 16, 16), region(32, 32, 16, 16)];
        let pairs = [MatchPair { q: 0, t: 0 }, MatchPair { q: 0, t: 1 }];
        let s = score_quick(&q, &t, &pairs, AREA, AREA, SimilarityKind::Symmetric);
        assert_eq!(s.covered_query_area, 1024);
        assert_eq!(s.covered_target_area, 512);
    }

    #[test]
    fn greedy_respects_one_to_one() {
        // Q0 matches T0 and T1; committing (Q0,T0) forbids (Q0,T1).
        let q = [region(0, 0, 32, 32)];
        let t = [region(0, 0, 32, 32), region(32, 32, 16, 16)];
        let pairs = [MatchPair { q: 0, t: 0 }, MatchPair { q: 0, t: 1 }];
        let s = score_greedy(&q, &t, &pairs, AREA, AREA, SimilarityKind::Symmetric);
        assert_eq!(s.pairs_used.len(), 1);
        assert_eq!(s.pairs_used[0], MatchPair { q: 0, t: 0 }, "greedy should take the bigger pair");
        assert_eq!(s.covered_target_area, 1024);
    }

    #[test]
    fn quick_upper_bounds_greedy() {
        // Quick relaxes the constraint, so its covered area dominates.
        let q = [region(0, 0, 32, 32), region(16, 16, 32, 32)];
        let t = [region(0, 0, 24, 24), region(40, 40, 24, 24)];
        let pairs = [
            MatchPair { q: 0, t: 0 },
            MatchPair { q: 0, t: 1 },
            MatchPair { q: 1, t: 0 },
            MatchPair { q: 1, t: 1 },
        ];
        let quick = score_quick(&q, &t, &pairs, AREA, AREA, SimilarityKind::Symmetric);
        let greedy = score_greedy(&q, &t, &pairs, AREA, AREA, SimilarityKind::Symmetric);
        assert!(quick.similarity >= greedy.similarity - 1e-12);
    }

    #[test]
    fn exact_dominates_greedy_and_finds_optimum() {
        // Adversarial instance for greedy: the largest single pair blocks a
        // better two-pair combination.
        // Q0 large, Q1/Q2 medium; T0 large, T1/T2 medium.
        let q = [region(0, 0, 40, 40), region(0, 40, 64, 24), region(40, 0, 24, 40)];
        let t = [region(0, 0, 40, 40), region(0, 40, 64, 24), region(40, 0, 24, 40)];
        // Greedy bait: (Q0, T0) is the single best pair, but it conflicts
        // with nothing here — craft conflicts instead:
        let pairs = [
            MatchPair { q: 0, t: 0 }, // big + big
            MatchPair { q: 1, t: 0 }, // medium + big
            MatchPair { q: 0, t: 1 }, // big + medium
            MatchPair { q: 2, t: 2 }, // medium + medium
        ];
        let greedy = score_greedy(&q, &t, &pairs, AREA, AREA, SimilarityKind::Symmetric);
        let exact = score_exact(&q, &t, &pairs, AREA, AREA, SimilarityKind::Symmetric);
        assert!(exact.similarity >= greedy.similarity - 1e-12);
        // Exact must pick a valid one-to-one set.
        let mut qs: Vec<usize> = exact.pairs_used.iter().map(|p| p.q).collect();
        let mut ts: Vec<usize> = exact.pairs_used.iter().map(|p| p.t).collect();
        qs.sort_unstable();
        qs.dedup();
        ts.sort_unstable();
        ts.dedup();
        assert_eq!(qs.len(), exact.pairs_used.len());
        assert_eq!(ts.len(), exact.pairs_used.len());
    }

    #[test]
    fn exact_beats_greedy_on_adversarial_instance() {
        // Greedy's first choice must be strictly suboptimal overall:
        // Q0 covers a large area; pairing it with T_big blocks Q1 and Q2
        // from covering T at all. Optimal pairs Q0 with a small target and
        // the others with the big halves.
        let q_big = region(0, 0, 64, 48); // 3/4 of Q
        let q_small1 = region(0, 48, 32, 16);
        let q_small2 = region(32, 48, 32, 16);
        let t_big = region(0, 0, 64, 48);
        let t_half1 = region(0, 48, 32, 16);
        let t_half2 = region(32, 48, 32, 16);
        let q = [q_big, q_small1, q_small2];
        let t = [t_big, t_half1, t_half2];
        let pairs = [
            MatchPair { q: 0, t: 0 }, // the bait: big with big
            MatchPair { q: 1, t: 0 },
            MatchPair { q: 2, t: 0 },
            MatchPair { q: 0, t: 1 },
            MatchPair { q: 0, t: 2 },
        ];
        let greedy = score_greedy(&q, &t, &pairs, AREA, AREA, SimilarityKind::Symmetric);
        let exact = score_exact(&q, &t, &pairs, AREA, AREA, SimilarityKind::Symmetric);
        // Greedy takes the bait (0,0) = 3072+3072 = 6144, after which every
        // other pair reuses Q0 or T0 and is illegal.
        assert_eq!(greedy.pairs_used.len(), 1);
        assert_eq!(greedy.covered_query_area + greedy.covered_target_area, 6144);
        // Exact avoids the bait: e.g. {(Q1,T0), (Q0,T1)} covers
        // 512+3072 on each side = 7168 total.
        assert_eq!(exact.covered_query_area + exact.covered_target_area, 7168);
        assert!(exact.similarity > greedy.similarity);

        // Now add independent medium pairs that conflict with the bait.
        let pairs2 = [
            MatchPair { q: 0, t: 1 }, // big-q with small-t (gain 3072+512)
            MatchPair { q: 1, t: 0 }, // small-q with big-t
            MatchPair { q: 0, t: 0 }, // bait: 3072+3072, blocks both above
        ];
        let greedy2 = score_greedy(&q, &t, &pairs2, AREA, AREA, SimilarityKind::Symmetric);
        let exact2 = score_exact(&q, &t, &pairs2, AREA, AREA, SimilarityKind::Symmetric);
        // Optimal: (0,1) + (1,0) = 3072+512 + 512+3072 = 7168 > 6144.
        assert!(exact2.covered_query_area + exact2.covered_target_area == 7168);
        assert!(greedy2.covered_query_area + greedy2.covered_target_area == 6144);
        assert!(exact2.similarity > greedy2.similarity);
    }

    #[test]
    fn dispatcher_caps_exact() {
        let q = [region(0, 0, 16, 16)];
        let t = [region(0, 0, 16, 16)];
        let pairs = vec![MatchPair { q: 0, t: 0 }; 40];
        let mut params = WalrusParams::paper_defaults();
        params.matching = MatchingKind::Exact;
        params.exact_pair_limit = 8;
        // Must terminate fast (falls back to greedy) and give a sane score.
        let s = score(&params, &q, &t, &pairs, AREA, AREA);
        assert!(s.similarity > 0.0);
    }

    #[test]
    fn similarity_is_symmetric_under_role_swap() {
        let a_regions = [region(0, 0, 32, 32), region(32, 0, 16, 32)];
        let b_regions = [region(8, 8, 32, 32), region(0, 40, 32, 16)];
        let pairs_ab = [MatchPair { q: 0, t: 1 }, MatchPair { q: 1, t: 0 }];
        let pairs_ba: Vec<MatchPair> =
            pairs_ab.iter().map(|p| MatchPair { q: p.t, t: p.q }).collect();
        for f in [score_quick, score_greedy, score_exact] {
            let ab = f(&a_regions, &b_regions, &pairs_ab, AREA, AREA, SimilarityKind::Symmetric);
            let ba = f(&b_regions, &a_regions, &pairs_ba, AREA, AREA, SimilarityKind::Symmetric);
            assert!((ab.similarity - ba.similarity).abs() < 1e-12);
        }
    }
}
