//! Crash-safe durable store: snapshot + write-ahead log + recovery.
//!
//! [`DurableDatabase`] wraps an in-memory [`ImageDatabase`] with the
//! durability discipline of a real database engine:
//!
//! * every mutation is appended to an fsynced write-ahead log
//!   ([`crate::wal`]) *before* it is applied in memory (write-ahead rule);
//! * [`DurableDatabase::checkpoint`] folds the log into a fresh v2 snapshot
//!   ([`crate::persist`]), written atomically (temp file → fsync → rename →
//!   directory fsync), then resets the log;
//! * [`DurableDatabase::open`] recovers: load the last good snapshot,
//!   replay WAL records past the snapshot's `last_lsn`, and truncate any
//!   torn tail a crash left behind.
//!
//! A crash at *any* instant therefore loses at most the single in-flight
//! operation — the store always reopens to the old or the new committed
//! state. The crash-consistency test suite drives every one of these code
//! paths through [`crate::storage::FaultIo`] and asserts exactly that.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/snapshot.walrus   last checkpoint (v2 format, checksummed)
//! <dir>/wal.log           operations since that checkpoint
//! <dir>/snapshot.walrus.tmp   transient; left only by a crash mid-checkpoint
//! ```

use crate::database::{ImageDatabase, ImageMeta, QueryOptions};
use crate::params::WalrusParams;
use crate::persist;
use crate::region::Region;
use crate::storage::{is_transient, DiskIo, RetryIo, StorageIo};
use crate::wal::{self, WalOp};
use crate::{QueryOutcome, RankedImage, Result, WalrusError};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use walrus_guard::{Guard, RetryPolicy};
use walrus_imagery::Image;

/// Snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.walrus";
/// Write-ahead-log file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// What [`DurableDatabase::open`] found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A snapshot file existed and loaded.
    pub snapshot_loaded: bool,
    /// `last_lsn` recorded in that snapshot (0 = none / fresh).
    pub snapshot_lsn: u64,
    /// WAL records applied on top of the snapshot.
    pub records_replayed: usize,
    /// WAL records skipped because the snapshot already contained them
    /// (a crash hit between checkpoint rename and WAL reset).
    pub records_skipped: usize,
    /// A torn record trailed the log and was truncated away.
    pub torn_tail_truncated: bool,
    /// Bytes dropped by that truncation.
    pub truncated_bytes: u64,
}

/// A WAL-backed [`ImageDatabase`] that survives crashes.
#[derive(Debug)]
pub struct DurableDatabase {
    io: Arc<dyn StorageIo>,
    dir: PathBuf,
    db: ImageDatabase,
    /// LSN the next logged operation will carry (LSNs start at 1).
    next_lsn: u64,
    /// Valid byte length of the WAL (0 = not yet created).
    wal_len: u64,
    /// Format version of the open WAL file. Appends must keep encoding
    /// records in the file's own version (a v1 log keeps receiving v1
    /// records); fresh files and checkpoint resets start at the current
    /// version.
    wal_version: u32,
    /// Records appended since the last checkpoint.
    records_since_checkpoint: usize,
    /// Checkpoint automatically once this many records accumulate.
    auto_checkpoint: Option<usize>,
    /// Set when a failed append could not be rolled back: the on-disk WAL
    /// tail is in an unknown state, so further writes are refused until
    /// the store is reopened (which re-establishes a clean tail).
    poisoned: bool,
    /// Backoff schedule for transient failures of the WAL append itself
    /// (the one IO path [`RetryIo`] cannot wrap, because a repeated append
    /// needs the committed tail restored between attempts).
    retry: RetryPolicy,
}

impl DurableDatabase {
    /// Opens (or initializes) a store directory on the real filesystem.
    /// `params` is used only when creating a fresh store; an existing
    /// snapshot's parameters always win. Idempotent IO (reads, full-file
    /// writes, fsyncs) is wrapped in [`RetryIo`], so transient OS errors
    /// (EINTR-style) are absorbed with bounded backoff.
    pub fn open(dir: impl AsRef<Path>, params: WalrusParams) -> Result<(Self, RecoveryReport)> {
        Self::open_with(
            Arc::new(RetryIo::new(Arc::new(DiskIo), RetryPolicy::default())),
            dir,
            params,
        )
    }

    /// Like [`DurableDatabase::open`] but over a pluggable I/O layer —
    /// the entry point for fault-injection tests.
    pub fn open_with(
        io: Arc<dyn StorageIo>,
        dir: impl AsRef<Path>,
        params: WalrusParams,
    ) -> Result<(Self, RecoveryReport)> {
        let dir = dir.as_ref().to_path_buf();
        io.create_dir_all(&dir)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let wal_path = dir.join(WAL_FILE);
        let mut report = RecoveryReport::default();

        let (db, snapshot_lsn) = if io.exists(&snapshot_path) {
            let loaded = persist::load_from_file_with(io.as_ref(), &snapshot_path)?;
            report.snapshot_loaded = true;
            report.snapshot_lsn = loaded.1;
            loaded
        } else {
            (ImageDatabase::new(params)?, 0)
        };

        let mut store = Self {
            io,
            dir,
            db,
            next_lsn: snapshot_lsn + 1,
            wal_len: 0,
            wal_version: wal::WAL_VERSION,
            records_since_checkpoint: 0,
            auto_checkpoint: None,
            poisoned: false,
            retry: RetryPolicy::default(),
        };

        if store.io.exists(&wal_path) {
            let bytes = store
                .io
                .read(&wal_path)
                .map_err(WalrusError::io_context("read", &wal_path))?;
            let scan = wal::read_wal(&bytes)?;
            for rec in scan.records {
                if rec.lsn <= snapshot_lsn {
                    report.records_skipped += 1;
                    continue;
                }
                store.replay(rec.op)?;
                store.next_lsn = rec.lsn + 1;
                store.records_since_checkpoint += 1;
                report.records_replayed += 1;
            }
            store.wal_len = scan.valid_len;
            if scan.valid_len > 0 {
                store.wal_version = scan.version;
            }
            if scan.torn_tail {
                report.torn_tail_truncated = true;
                report.truncated_bytes = bytes.len() as u64 - scan.valid_len;
                store
                    .io
                    .truncate(&wal_path, scan.valid_len)
                    .and_then(|()| store.io.fsync(&wal_path))
                    .map_err(WalrusError::io_context("truncate torn tail of", &wal_path))?;
            }
        }

        if !report.snapshot_loaded {
            // Fresh store: persist an empty snapshot so the configuration
            // itself is durable and "old state" is always well defined.
            persist::save_to_file_with(
                store.io.as_ref(),
                &store.db,
                &snapshot_path,
                store.next_lsn - 1,
            )?;
        }
        Ok((store, report))
    }

    fn replay(&mut self, op: WalOp) -> Result<()> {
        match op {
            WalOp::Insert { expected_id, name, width, height, regions } => {
                let len = self.db.image_slots().len();
                if expected_id < len {
                    return Err(WalrusError::Corrupt(format!(
                        "wal replay: insert id {expected_id} below next slot {len}"
                    )));
                }
                // A shard of a sharded store sees only the ids hashed to it;
                // the gaps belong to other shards and are padded with
                // tombstones so global id assignment is reproduced exactly.
                // Monolithic stores log consecutive ids, so this loop is
                // empty for them and the strict check below still holds.
                for _ in len..expected_id {
                    self.db.insert_tombstone();
                }
                let got = self.db.insert_regions(&name, width, height, regions).map_err(|e| {
                    WalrusError::Corrupt(format!("wal replay: insert failed: {e}"))
                })?;
                if got != expected_id {
                    return Err(WalrusError::Corrupt(format!(
                        "wal replay: image got id {got}, log expected {expected_id}"
                    )));
                }
            }
            WalOp::Remove { id } => {
                self.db.remove_image(id).map_err(|e| {
                    WalrusError::Corrupt(format!("wal replay: remove failed: {e}"))
                })?;
            }
        }
        Ok(())
    }

    fn poisoned_error(&self) -> WalrusError {
        WalrusError::Io {
            context: format!("append to {}", self.dir.join(WAL_FILE).display()),
            source: std::io::Error::other(
                "store poisoned by an earlier append failure; reopen to recover",
            ),
        }
    }

    /// Appends one record (write-ahead) and, only on success, applies the
    /// operation in memory.
    ///
    /// Transient append failures are retried under the store's
    /// [`RetryPolicy`] — but never blindly: a failed append may have left a
    /// *partial* record on disk, and re-appending over it would corrupt the
    /// log middle (unrecoverable, unlike a torn tail). Each retry therefore
    /// first restores the committed tail (`truncate` to the last good
    /// length) and only re-appends once that provably succeeded.
    fn log_then_apply(&mut self, op: WalOp) -> Result<()> {
        if self.poisoned {
            return Err(self.poisoned_error());
        }
        let wal_path = self.dir.join(WAL_FILE);
        if self.wal_len == 0 {
            // About to create the file: it starts at the current version.
            self.wal_version = wal::WAL_VERSION;
        }
        let record = wal::encode_record_versioned(self.next_lsn, &op, self.wal_version);
        let max_record = self.db.params().budgets.max_wal_record_bytes;
        if record.len() > max_record {
            return Err(WalrusError::BudgetExceeded {
                what: "wal record bytes",
                used: record.len(),
                limit: max_record,
            });
        }
        let mut buf = if self.wal_len == 0 { wal::wal_header() } else { Vec::new() };
        buf.extend_from_slice(&record);

        let max_attempts = self.retry.max_attempts.max(1);
        let mut attempt = 1u32;
        loop {
            let appended = self
                .io
                .append(&wal_path, &buf)
                .and_then(|()| self.io.fsync(&wal_path));
            let Err(e) = appended else { break };
            // The on-disk tail may hold a partial record. Cut it back to
            // the last committed length; a truncate that fails because the
            // file was never created still counts as a clean (empty) tail.
            let repaired = self
                .io
                .truncate(&wal_path, self.wal_len)
                .and_then(|()| self.io.fsync(&wal_path));
            let tail_clean = repaired.is_ok() || !self.io.exists(&wal_path);
            if tail_clean && is_transient(&e) && attempt < max_attempts {
                let delay = self.retry.delay_for(attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                attempt += 1;
                continue;
            }
            if !tail_clean {
                // The tail is unknowable — poison until reopen.
                self.poisoned = true;
            }
            return Err(WalrusError::io_context("append to", &wal_path)(e));
        }
        self.wal_len += buf.len() as u64;
        self.next_lsn += 1;
        self.records_since_checkpoint += 1;
        self.replay(op)?;
        if let Some(every) = self.auto_checkpoint {
            if self.records_since_checkpoint >= every {
                self.checkpoint()?;
            }
        }
        Ok(())
    }

    /// Extracts regions of `image` and durably inserts them. Returns the
    /// new id. The insert is committed once this returns `Ok`.
    pub fn insert_image(&mut self, name: &str, image: &Image) -> Result<usize> {
        let regions = crate::extract::extract_regions(image, self.db.params())?;
        self.insert_regions(name, image.width(), image.height(), regions)
    }

    /// Durable batch ingest: extracts regions for all images in parallel
    /// (`params.threads` workers), then logs and applies each insert in
    /// order. Extraction is all-or-nothing; logging is per-image, so a
    /// failure mid-batch commits the prefix (the returned ids) like a
    /// serial insert loop would.
    pub fn insert_images_batch(&mut self, items: &[(&str, &Image)]) -> Result<Vec<usize>> {
        self.insert_images_batch_guarded(items, &Guard::none())
    }

    /// [`DurableDatabase::insert_images_batch`] under a lifecycle [`Guard`].
    /// All-or-nothing under interruption: every poll happens during
    /// extraction plus one final poll before the first WAL append, so a
    /// cancelled or timed-out batch leaves both the log and the index
    /// byte-for-byte untouched.
    pub fn insert_images_batch_guarded(
        &mut self,
        items: &[(&str, &Image)],
        guard: &Guard,
    ) -> Result<Vec<usize>> {
        let params = *self.db.params();
        let threads = walrus_parallel::resolve_threads(params.threads);
        let ingest_span = guard.span("ingest");
        if let Some(s) = &ingest_span {
            s.add("images", items.len() as u64);
        }
        // Workers share the interrupt sources but not the trace (spans are
        // opened only on this orchestrating thread).
        let extract_span = guard.span("extract");
        let worker_guard = guard.without_trace();
        let extracted: Vec<Vec<Region>> =
            walrus_parallel::try_parallel_map_guarded(threads, guard, items, |_, (_, image)| {
                crate::extract::extract_regions_guarded(image, &params, 1, &worker_guard)
            })?;
        if let Some(s) = &extract_span {
            s.add("regions", extracted.iter().map(Vec::len).sum::<usize>() as u64);
        }
        drop(extract_span);
        guard.poll().map_err(WalrusError::from)?;
        let wal_span = guard.span("wal_append");
        let wal_before = self.wal_len;
        let mut ids = Vec::with_capacity(items.len());
        for ((name, image), regions) in items.iter().zip(extracted) {
            ids.push(self.insert_regions(name, image.width(), image.height(), regions)?);
        }
        if let Some(s) = &wal_span {
            s.add("records", ids.len() as u64);
            s.add("bytes", self.wal_len.saturating_sub(wal_before));
        }
        Ok(ids)
    }

    /// Durably inserts pre-extracted regions (see
    /// [`ImageDatabase::insert_regions`]).
    pub fn insert_regions(
        &mut self,
        name: &str,
        width: usize,
        height: usize,
        regions: Vec<Region>,
    ) -> Result<usize> {
        // Validate dimensionality before anything reaches the log.
        let dims = self.db.params().signature_dims();
        for r in &regions {
            if r.dims() != dims {
                return Err(WalrusError::BadParams(format!(
                    "region has {} dims, database expects {dims}",
                    r.dims()
                )));
            }
        }
        let expected_id = self.db.image_slots().len();
        self.log_then_apply(WalOp::Insert {
            expected_id,
            name: name.to_string(),
            width,
            height,
            regions,
        })?;
        Ok(expected_id)
    }

    /// Durably inserts pre-extracted regions **at an explicit id**, padding
    /// the slots below it with tombstones. This is the ingest primitive of
    /// the sharded store ([`crate::sharded::ShardedStore`]): ids are
    /// assigned globally, so the ids a single shard stores are sparse, and
    /// the WAL record carries the global id for replay to reproduce.
    /// `id` must be at or above this store's next free slot.
    pub fn insert_regions_at(
        &mut self,
        id: usize,
        name: &str,
        width: usize,
        height: usize,
        regions: Vec<Region>,
    ) -> Result<usize> {
        let dims = self.db.params().signature_dims();
        for r in &regions {
            if r.dims() != dims {
                return Err(WalrusError::BadParams(format!(
                    "region has {} dims, database expects {dims}",
                    r.dims()
                )));
            }
        }
        let len = self.db.image_slots().len();
        if id < len {
            return Err(WalrusError::BadParams(format!(
                "insert at id {id} below next slot {len}"
            )));
        }
        self.log_then_apply(WalOp::Insert {
            expected_id: id,
            name: name.to_string(),
            width,
            height,
            regions,
        })?;
        Ok(id)
    }

    /// Durably removes an image.
    pub fn remove_image(&mut self, id: usize) -> Result<()> {
        if self.db.image(id).is_none() {
            return Err(WalrusError::UnknownImage(id));
        }
        self.log_then_apply(WalOp::Remove { id })
    }

    /// Folds the WAL into a fresh atomic snapshot and resets the log.
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.poisoned {
            return Err(self.poisoned_error());
        }
        let snapshot_path = self.dir.join(SNAPSHOT_FILE);
        persist::save_to_file_with(
            self.io.as_ref(),
            &self.db,
            &snapshot_path,
            self.next_lsn - 1,
        )?;
        // The snapshot now covers every logged record; reset the WAL. A
        // crash before (or during) this reset is harmless — recovery skips
        // records at or below the snapshot's last_lsn.
        let wal_path = self.dir.join(WAL_FILE);
        if let Err(e) = wal::reset(self.io.as_ref(), &wal_path) {
            // The WAL is in an unknown state; stop writes until reopen.
            self.poisoned = true;
            return Err(e.into());
        }
        self.wal_len = wal::WAL_HEADER_LEN;
        self.wal_version = wal::WAL_VERSION;
        self.records_since_checkpoint = 0;
        Ok(())
    }

    /// Checkpoints automatically once `every` records accumulate in the
    /// WAL (`None` disables; default).
    pub fn set_auto_checkpoint(&mut self, every: Option<usize>) {
        self.auto_checkpoint = every;
    }

    /// Overrides the transient-append backoff schedule (default:
    /// [`RetryPolicy::default`]; [`RetryPolicy::none`] disables retries).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The wrapped in-memory database (queries go straight to it).
    pub fn db(&self) -> &ImageDatabase {
        &self.db
    }

    /// Store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current valid WAL length in bytes.
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// LSN of the last committed operation (0 = none yet).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Records appended since the last checkpoint.
    pub fn records_since_checkpoint(&self) -> usize {
        self.records_since_checkpoint
    }

    /// True when a failed append has frozen writes (reopen to recover).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Number of live images.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// True when no images are indexed.
    pub fn is_empty(&self) -> bool {
        self.db.is_empty()
    }

    /// Runs a full query (see [`ImageDatabase::query`]).
    pub fn query(&self, query: &Image) -> Result<QueryOutcome> {
        self.db.query(query)
    }

    /// The `k` most similar images (see [`ImageDatabase::top_k`]).
    pub fn top_k(&self, query: &Image, k: usize) -> Result<Vec<RankedImage>> {
        self.db.top_k(query, k)
    }

    /// Guarded query (see [`ImageDatabase::query_guarded`]).
    pub fn query_guarded(&self, query: &Image, guard: &Guard) -> Result<QueryOutcome> {
        self.db.query_guarded(query, guard)
    }

    /// Guarded top-k (see [`ImageDatabase::top_k_guarded`]).
    pub fn top_k_guarded(&self, query: &Image, k: usize, guard: &Guard) -> Result<QueryOutcome> {
        self.db.top_k_guarded(query, k, guard)
    }

    /// Per-request options query (see
    /// [`ImageDatabase::query_with_options_guarded`]).
    pub fn query_with_options_guarded(
        &self,
        query: &Image,
        opts: &QueryOptions,
        guard: &Guard,
    ) -> Result<QueryOutcome> {
        self.db.query_with_options_guarded(query, opts, guard)
    }

    /// Owned metadata snapshot for an image (see
    /// [`ImageDatabase::image_meta`]).
    pub fn image_meta(&self, id: usize) -> Option<ImageMeta> {
        self.db.image_meta(id)
    }
}

/// A thread-safe handle over a [`DurableDatabase`]: concurrent readers,
/// exclusive writers. Cloning shares the store.
#[derive(Debug, Clone)]
pub struct SharedDurableDatabase {
    inner: Arc<parking_lot::RwLock<DurableDatabase>>,
}

impl SharedDurableDatabase {
    /// Opens (or initializes) a store directory for shared use.
    pub fn open(dir: impl AsRef<Path>, params: WalrusParams) -> Result<(Self, RecoveryReport)> {
        let (store, report) = DurableDatabase::open(dir, params)?;
        Ok((Self::new(store), report))
    }

    /// Wraps an already-open store.
    pub fn new(store: DurableDatabase) -> Self {
        Self { inner: Arc::new(parking_lot::RwLock::new(store)) }
    }

    /// Durably inserts an image. Region extraction runs **outside** the
    /// exclusive lock (parameters are immutable after open, so the
    /// unlocked snapshot cannot go stale); the lock covers only the WAL
    /// append and index insertion.
    pub fn insert_image(&self, name: &str, image: &Image) -> Result<usize> {
        let params = *self.inner.read().db().params();
        let regions = crate::extract::extract_regions(image, &params)?;
        self.inner.write().insert_regions(name, image.width(), image.height(), regions)
    }

    /// Durable batch ingest: parallel lock-free extraction, then one
    /// exclusive lock for the WAL appends and index insertions.
    pub fn insert_images_batch(&self, items: &[(&str, &Image)]) -> Result<Vec<usize>> {
        self.insert_images_batch_guarded(items, &Guard::none())
    }

    /// [`SharedDurableDatabase::insert_images_batch`] under a lifecycle
    /// [`Guard`]; all-or-nothing under interruption, with the final poll
    /// before the exclusive lock is taken.
    pub fn insert_images_batch_guarded(
        &self,
        items: &[(&str, &Image)],
        guard: &Guard,
    ) -> Result<Vec<usize>> {
        let params = *self.inner.read().db().params();
        let threads = walrus_parallel::resolve_threads(params.threads);
        let ingest_span = guard.span("ingest");
        if let Some(s) = &ingest_span {
            s.add("images", items.len() as u64);
        }
        // Workers share the interrupt sources but not the trace (spans are
        // opened only on this orchestrating thread).
        let extract_span = guard.span("extract");
        let worker_guard = guard.without_trace();
        let extracted: Vec<Vec<Region>> =
            walrus_parallel::try_parallel_map_guarded(threads, guard, items, |_, (_, image)| {
                crate::extract::extract_regions_guarded(image, &params, 1, &worker_guard)
            })?;
        if let Some(s) = &extract_span {
            s.add("regions", extracted.iter().map(Vec::len).sum::<usize>() as u64);
        }
        drop(extract_span);
        guard.poll().map_err(WalrusError::from)?;
        let wal_span = guard.span("wal_append");
        let mut store = self.inner.write();
        let wal_before = store.wal_len();
        let mut ids = Vec::with_capacity(items.len());
        for ((name, image), regions) in items.iter().zip(extracted) {
            ids.push(store.insert_regions(name, image.width(), image.height(), regions)?);
        }
        if let Some(s) = &wal_span {
            s.add("records", ids.len() as u64);
            s.add("bytes", store.wal_len().saturating_sub(wal_before));
        }
        Ok(ids)
    }

    /// Durably removes an image (exclusive lock).
    pub fn remove_image(&self, id: usize) -> Result<()> {
        self.inner.write().remove_image(id)
    }

    /// Runs a query (shared lock; queries proceed concurrently).
    pub fn query(&self, query: &Image) -> Result<QueryOutcome> {
        self.inner.read().query(query)
    }

    /// The `k` most similar images (shared lock).
    pub fn top_k(&self, query: &Image, k: usize) -> Result<Vec<RankedImage>> {
        self.inner.read().top_k(query, k)
    }

    /// Guarded query (shared lock; deadline → partial, cancel → error).
    pub fn query_guarded(&self, query: &Image, guard: &Guard) -> Result<QueryOutcome> {
        self.inner.read().query_guarded(query, guard)
    }

    /// Guarded top-k (shared lock).
    pub fn top_k_guarded(&self, query: &Image, k: usize, guard: &Guard) -> Result<QueryOutcome> {
        self.inner.read().top_k_guarded(query, k, guard)
    }

    /// Per-request options query (shared lock; see
    /// [`ImageDatabase::query_with_options_guarded`]).
    pub fn query_with_options_guarded(
        &self,
        query: &Image,
        opts: &QueryOptions,
        guard: &Guard,
    ) -> Result<QueryOutcome> {
        self.inner.read().query_with_options_guarded(query, opts, guard)
    }

    /// Owned metadata snapshot for an image (shared lock held only for the
    /// clone).
    pub fn image_meta(&self, id: usize) -> Option<ImageMeta> {
        self.inner.read().image_meta(id)
    }

    /// A copy of the engine configuration (shared lock held for the copy).
    pub fn params(&self) -> WalrusParams {
        *self.inner.read().db().params()
    }

    /// Number of indexed regions (shared lock).
    pub fn num_regions(&self) -> usize {
        self.inner.read().db().num_regions()
    }

    /// Current WAL length in bytes (shared lock).
    pub fn wal_len(&self) -> u64 {
        self.inner.read().wal_len()
    }

    /// WAL records appended since the last checkpoint (shared lock).
    pub fn records_since_checkpoint(&self) -> usize {
        self.inner.read().records_since_checkpoint()
    }

    /// LSN of the last committed operation (shared lock).
    pub fn last_lsn(&self) -> u64 {
        self.inner.read().last_lsn()
    }

    /// Checkpoints the store (exclusive lock).
    pub fn checkpoint(&self) -> Result<()> {
        self.inner.write().checkpoint()
    }

    /// Number of live images (shared lock).
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when empty (shared lock).
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

/// Read-only integrity verdict for one durable directory (`walrus scrub`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirScrub {
    /// True when the snapshot decoded with every CRC intact (a missing
    /// snapshot is a failure — every committed store has one).
    pub snapshot_ok: bool,
    /// Live images counted in the snapshot.
    pub snapshot_images: usize,
    /// True when the WAL is a clean prefix of intact frames (a missing WAL
    /// passes: a store checkpointed and never written again may lack one).
    pub wal_ok: bool,
    /// Intact WAL records found.
    pub wal_records: usize,
    /// First problem found, when any.
    pub error: Option<String>,
}

impl DirScrub {
    /// True when both halves of the directory verified clean.
    pub fn clean(&self) -> bool {
        self.snapshot_ok && self.wal_ok
    }
}

/// Verifies one store directory without mutating it: decodes the snapshot
/// (whole-file, params and images CRCs) and scans the WAL for a clean
/// prefix of intact frames ([`wal::scan_valid_prefix`]). Any undecodable
/// byte — including a torn tail an open would silently repair — fails the
/// scrub, because scrub's contract is "this directory needs no repair".
pub fn scrub_dir(io: &dyn StorageIo, dir: &Path) -> DirScrub {
    let mut scrub = DirScrub {
        snapshot_ok: false,
        snapshot_images: 0,
        wal_ok: true,
        wal_records: 0,
        error: None,
    };
    let snapshot_path = dir.join(SNAPSHOT_FILE);
    match io.read(&snapshot_path).map_err(|e| e.to_string()).and_then(|bytes| {
        persist::load_with_lsn(&bytes).map_err(|e| e.to_string())
    }) {
        Ok((db, _)) => {
            scrub.snapshot_ok = true;
            scrub.snapshot_images = db.len();
        }
        Err(e) => scrub.error = Some(format!("snapshot: {e}")),
    }
    let wal_path = dir.join(WAL_FILE);
    if io.exists(&wal_path) {
        match io.read(&wal_path) {
            Ok(bytes) => {
                let scan = wal::scan_valid_prefix(&bytes);
                scrub.wal_records = scan.records.len();
                if scan.valid_len < bytes.len() as u64 {
                    scrub.wal_ok = false;
                    let bad = bytes.len() as u64 - scan.valid_len;
                    scrub.error.get_or_insert(format!(
                        "wal: {bad} byte(s) past the valid prefix fail validation"
                    ));
                }
            }
            Err(e) => {
                scrub.wal_ok = false;
                scrub.error.get_or_insert(format!("wal: {e}"));
            }
        }
    }
    scrub
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::FaultIo;
    use walrus_imagery::synth::scene::{Scene, SceneObject};
    use walrus_imagery::synth::shapes::Shape;
    use walrus_imagery::synth::texture::{Rgb, Texture};
    use walrus_wavelet::SlidingParams;

    fn params() -> WalrusParams {
        WalrusParams {
            sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 16, stride: 4 },
            ..WalrusParams::paper_defaults()
        }
    }

    fn scene(hue: f32) -> Image {
        Scene::new(Texture::Solid(Rgb(hue, 0.4, 0.3)))
            .with(SceneObject::new(
                Shape::Ellipse { rx: 0.5, ry: 0.5 },
                Texture::Solid(Rgb(0.9, 0.2, 0.2)),
                (0.5, 0.5),
                0.4,
            ))
            .render(32, 32)
            .unwrap()
    }

    #[test]
    fn fresh_store_reopens_empty() {
        let io = Arc::new(FaultIo::new());
        let (store, report) = DurableDatabase::open_with(io.clone(), "db", params()).unwrap();
        assert!(!report.snapshot_loaded);
        assert!(store.is_empty());
        drop(store);
        let (store, report) = DurableDatabase::open_with(io, "db", params()).unwrap();
        assert!(report.snapshot_loaded, "initial snapshot was persisted");
        assert!(store.is_empty());
    }

    #[test]
    fn scrub_verifies_snapshot_and_wal() {
        let io = Arc::new(FaultIo::new());
        let (mut store, _) = DurableDatabase::open_with(io.clone(), "db", params()).unwrap();
        store.insert_image("a", &scene(0.2)).unwrap();
        drop(store);
        let scrub = scrub_dir(io.as_ref(), Path::new("db"));
        assert!(scrub.clean(), "{scrub:?}");
        assert_eq!(scrub.wal_records, 1);

        // A torn WAL tail fails scrub even though an open would repair it:
        // scrub's verdict is "needs no repair".
        io.append(Path::new("db/wal.log"), &[0xAB; 7]).unwrap();
        io.fsync(Path::new("db/wal.log")).unwrap();
        let scrub = scrub_dir(io.as_ref(), Path::new("db"));
        assert!(!scrub.clean());
        assert!(scrub.error.as_deref().unwrap().starts_with("wal:"), "{scrub:?}");

        // Bit rot inside the snapshot envelope fails its CRC.
        assert!(io.corrupt_byte(Path::new("db/snapshot.walrus"), 20, 0xFF));
        let scrub = scrub_dir(io.as_ref(), Path::new("db"));
        assert!(!scrub.snapshot_ok);
        assert!(scrub.error.as_deref().unwrap().starts_with("snapshot:"), "{scrub:?}");
    }

    #[test]
    fn operations_survive_reopen_without_checkpoint() {
        let io = Arc::new(FaultIo::new());
        let (mut store, _) = DurableDatabase::open_with(io.clone(), "db", params()).unwrap();
        let a = store.insert_image("a", &scene(0.2)).unwrap();
        let b = store.insert_image("b", &scene(0.7)).unwrap();
        store.remove_image(a).unwrap();
        drop(store);

        let (store, report) = DurableDatabase::open_with(io, "db", params()).unwrap();
        assert_eq!(report.records_replayed, 3);
        assert_eq!(store.len(), 1);
        assert!(store.db().image(a).is_none());
        assert_eq!(store.db().image(b).unwrap().name, "b");
    }

    #[test]
    fn checkpoint_folds_wal_and_replay_skips_it() {
        let io = Arc::new(FaultIo::new());
        let (mut store, _) = DurableDatabase::open_with(io.clone(), "db", params()).unwrap();
        store.insert_image("a", &scene(0.2)).unwrap();
        store.insert_image("b", &scene(0.5)).unwrap();
        store.checkpoint().unwrap();
        assert_eq!(store.records_since_checkpoint(), 0);
        store.insert_image("c", &scene(0.8)).unwrap();
        drop(store);

        let (store, report) = DurableDatabase::open_with(io, "db", params()).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.snapshot_lsn, 2);
        assert_eq!(report.records_replayed, 1, "only c is outside the snapshot");
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn stale_wal_records_are_skipped_not_reapplied() {
        // Simulate a crash after checkpoint rename but before WAL reset:
        // the snapshot holds everything, the old WAL still lists it.
        let io = Arc::new(FaultIo::new());
        let (mut store, _) = DurableDatabase::open_with(io.clone(), "db", params()).unwrap();
        store.insert_image("a", &scene(0.2)).unwrap();
        let wal_before = io.file_bytes(Path::new("db/wal.log")).unwrap();
        store.checkpoint().unwrap();
        drop(store);
        // Put the pre-checkpoint WAL back.
        io.write(Path::new("db/wal.log"), &wal_before).unwrap();
        io.fsync(Path::new("db/wal.log")).unwrap();

        let (store, report) = DurableDatabase::open_with(io, "db", params()).unwrap();
        assert_eq!(report.records_skipped, 1);
        assert_eq!(report.records_replayed, 0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn torn_wal_tail_is_truncated() {
        let io = Arc::new(FaultIo::new());
        let (mut store, _) = DurableDatabase::open_with(io.clone(), "db", params()).unwrap();
        store.insert_image("a", &scene(0.2)).unwrap();
        let committed_len = store.wal_len();
        store.insert_image("b", &scene(0.5)).unwrap();
        drop(store);
        // Tear the final record in half.
        let wal = io.file_bytes(Path::new("db/wal.log")).unwrap();
        let torn = committed_len as usize + (wal.len() - committed_len as usize) / 2;
        io.write(Path::new("db/wal.log"), &wal[..torn]).unwrap();
        io.fsync(Path::new("db/wal.log")).unwrap();

        let (store, report) = DurableDatabase::open_with(io.clone(), "db", params()).unwrap();
        assert!(report.torn_tail_truncated);
        assert_eq!(report.records_replayed, 1);
        assert_eq!(store.len(), 1, "only the committed insert survives");
        assert_eq!(
            io.file_bytes(Path::new("db/wal.log")).unwrap().len() as u64,
            committed_len,
            "tail was physically truncated"
        );
    }

    #[test]
    fn auto_checkpoint_triggers() {
        let io = Arc::new(FaultIo::new());
        let (mut store, _) = DurableDatabase::open_with(io, "db", params()).unwrap();
        store.set_auto_checkpoint(Some(2));
        store.insert_image("a", &scene(0.2)).unwrap();
        assert_eq!(store.records_since_checkpoint(), 1);
        store.insert_image("b", &scene(0.5)).unwrap();
        assert_eq!(store.records_since_checkpoint(), 0, "auto-checkpoint fired");
    }

    #[test]
    fn remove_of_unknown_id_never_reaches_the_log() {
        let io = Arc::new(FaultIo::new());
        let (mut store, _) = DurableDatabase::open_with(io.clone(), "db", params()).unwrap();
        let before = store.wal_len();
        assert!(matches!(store.remove_image(7), Err(WalrusError::UnknownImage(7))));
        assert_eq!(store.wal_len(), before);
    }

    #[test]
    fn shared_durable_database_is_cloneable_and_concurrent() {
        let dir = std::env::temp_dir().join("walrus_shared_durable_test");
        std::fs::remove_dir_all(&dir).ok();
        let (shared, _) = SharedDurableDatabase::open(&dir, params()).unwrap();
        shared.insert_image("a", &scene(0.3)).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = shared.clone();
                std::thread::spawn(move || s.top_k(&scene(0.3), 1).unwrap())
            })
            .collect();
        for h in handles {
            let top = h.join().unwrap();
            assert_eq!(top[0].name, "a");
        }
        shared.checkpoint().unwrap();
        assert_eq!(shared.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_backed_store_round_trips() {
        let dir = std::env::temp_dir().join("walrus_durable_disk_test");
        std::fs::remove_dir_all(&dir).ok();
        let (mut store, _) = DurableDatabase::open(&dir, params()).unwrap();
        store.insert_image("a", &scene(0.2)).unwrap();
        store.insert_image("b", &scene(0.6)).unwrap();
        store.checkpoint().unwrap();
        store.remove_image(0).unwrap();
        drop(store);
        let (store, report) = DurableDatabase::open(&dir, params()).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.records_replayed, 1);
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
