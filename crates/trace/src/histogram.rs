//! A fixed-bucket, lock-free latency histogram.
//!
//! Buckets are powers of two over microseconds: bucket 0 holds the value 0,
//! bucket `i` holds values in `[2^(i-1), 2^i)`, and the last bucket absorbs
//! everything larger. Recording is a single relaxed atomic increment, so the
//! hot path never takes a lock; merging two histograms is a bucket-wise add,
//! which makes merge commutative and associative by construction.
//!
//! Quantiles use the nearest-rank rule over bucket upper bounds: the
//! reported value is the inclusive upper bound `2^i - 1` of the bucket
//! containing the ranked sample, so estimates never under-report and values
//! that sit exactly on a bucket boundary are exact.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets. Bucket 38 tops out at `2^38 - 1` µs ≈ 3.2 days, far
/// past any request latency this engine can produce; the last bucket is the
/// overflow catch-all.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Bucket index for a microsecond value.
fn bucket_index(micros: u64) -> usize {
    if micros == 0 {
        0
    } else {
        (64 - micros.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (the value a quantile in that bucket
/// reports).
pub fn bucket_bound_micros(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Lock-free fixed-bucket histogram of microsecond durations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one duration, in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Record one duration.
    pub fn record(&self, d: std::time::Duration) {
        self.record_micros(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Fold every sample of `other` into `self` (bucket-wise add).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_micros
            .fetch_add(other.sum_micros.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, for comparison and serialization.
    pub fn snapshot(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`), reported as the upper bound
    /// of the bucket holding the ranked sample. `None` when empty.
    pub fn quantile_micros(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if cumulative >= rank {
                return Some(bucket_bound_micros(i));
            }
        }
        Some(bucket_bound_micros(HISTOGRAM_BUCKETS - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_values_are_exact() {
        for k in 1..20 {
            let h = Histogram::new();
            let v = (1u64 << k) - 1;
            h.record_micros(v);
            assert_eq!(h.quantile_micros(1.0), Some(v));
        }
    }

    #[test]
    fn empty_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile_micros(0.5), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_adds_buckets() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_micros(3);
        b.record_micros(300);
        a.merge_from(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum_micros(), 303);
    }
}
