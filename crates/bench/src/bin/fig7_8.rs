//! **Figures 7 & 8** — retrieval quality: WALRUS vs the single-signature
//! systems (WBIIS, plus FMIQ and a color histogram as extra context).
//!
//! The paper's qualitative experiment: for a query of red flowers on green
//! foliage, WBIIS returns ≈7/14 semantically unrelated images (brick walls,
//! sunsets, a dog on a lawn — images sharing *global* color layout), while
//! WALRUS returns 13–14/14 flower images, including flowers at different
//! positions and scales.
//!
//! With the synthetic dataset the judgment is quantitative: every image has
//! a ground-truth class, so the harness reports each system's top-14 list
//! with classes, plus precision@14 against the flower class. The
//! reproduction target is `precision(WALRUS) > precision(WBIIS)` with
//! WALRUS retrieving flower variants at different positions/scales.
//!
//! Run: `cargo run --release -p walrus-bench --bin fig7_8`

use walrus_baselines::{FmiqRetriever, HistogramRetriever, Retriever, WbiisRetriever};
use walrus_bench::report::{f3, Table};
use walrus_bench::workloads::{
    build_walrus_db, flower_query, id_of_name, precision_at, retrieval_dataset, retrieval_params,
};
use walrus_bench::scale;

const K: usize = 14;

fn main() {
    let dataset = retrieval_dataset(scale());
    let query = flower_query();
    println!(
        "Figures 7 & 8: top-{K} retrieval quality on {} labeled synthetic images\n\
         query: red flower over green foliage (not a database member)\n",
        dataset.len()
    );

    // WALRUS.
    let db = build_walrus_db(&dataset, retrieval_params());
    let walrus_top = db.top_k(&query, K).expect("query succeeds");
    let walrus_ids: Vec<usize> =
        walrus_top.iter().filter_map(|r| id_of_name(&dataset, &r.name)).collect();

    // Baselines.
    let mut systems: Vec<(String, Vec<usize>)> = Vec::new();
    systems.push(("WALRUS".into(), walrus_ids));
    let mut wbiis = WbiisRetriever::new();
    let mut fmiq = FmiqRetriever::new();
    let mut hist = HistogramRetriever::new();
    for img in &dataset.images {
        wbiis.insert(&img.name, &img.image).expect("insert succeeds");
        fmiq.insert(&img.name, &img.image).expect("insert succeeds");
        hist.insert(&img.name, &img.image).expect("insert succeeds");
    }
    for retr in [&wbiis as &dyn Retriever, &fmiq, &hist] {
        let top = retr.top_k(&query, K).expect("query succeeds");
        let ids = top.iter().filter_map(|r| id_of_name(&dataset, &r.name)).collect();
        systems.push((retr.system_name().to_string(), ids));
    }

    // Ranked lists with ground-truth classes.
    for (name, ids) in &systems {
        let mut table = Table::new(&format!("{name} Top {K}"), &["rank", "image", "class"]);
        for (rank, &id) in ids.iter().enumerate() {
            let img = &dataset.images[id];
            table.row(&[(rank + 1).to_string(), img.name.clone(), img.class.name().to_string()]);
        }
        table.print();
    }

    // The headline comparison.
    let mut summary = Table::new("Precision At 14", &["system", "precision"]);
    let mut walrus_p = 0.0;
    let mut wbiis_p = 0.0;
    for (name, ids) in &systems {
        let p = precision_at(&dataset, ids, K);
        if name == "WALRUS" {
            walrus_p = p;
        }
        if name == "WBIIS" {
            wbiis_p = p;
        }
        summary.row(&[name.clone(), f3(p)]);
    }
    summary.print();
    println!(
        "Paper shape check: WALRUS precision ({:.3}) must exceed WBIIS\n\
         precision ({:.3}); the paper observed ~14/14 vs ~7/14.",
        walrus_p, wbiis_p
    );
}
