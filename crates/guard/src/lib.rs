//! Request lifecycle primitives for the WALRUS reproduction.
//!
//! Dependency-free building blocks threaded through the whole pipeline:
//!
//! - [`CancelToken`] — shared atomic cancellation flag; cloning is cheap and
//!   all clones observe a single `cancel()`.
//! - [`Deadline`] — monotonic point in time measured on an injectable
//!   [`Clock`] (immune to wall-clock jumps; deterministic under a
//!   [`TestClock`]).
//! - [`Guard`] — the per-request bundle the hot paths poll between work
//!   chunks. `poll()` is a few atomic loads when armed and almost free when
//!   not, so it is safe to call in inner loops. The guard also carries the
//!   request's optional [`TraceContext`], so every `*_guarded` API
//!   transports observability state without signature changes.
//! - [`Budgets`] — per-request resource ceilings enforced at decode,
//!   extraction, probe, and WAL-append time.
//! - [`RetryPolicy`] — bounded exponential backoff for transient IO errors.
//!
//! The crate's only dependency is `walrus-trace` (itself dependency-free),
//! so every layer — `parallel`, `wavelet`, `birch`, `core`, `cli` — can use
//! it without cycles.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub use walrus_trace::{
    monotonic, Clock, MonotonicClock, SharedClock, Span, SpanRecord, TestClock, TraceContext,
    TraceReport,
};

/// Why a guarded computation stopped early.
///
/// Ordered so that `Cancelled` (an explicit caller decision) takes precedence
/// over `DeadlineExceeded` when both are observable in the same poll.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The request's [`CancelToken`] was cancelled.
    Cancelled,
    /// The request's [`Deadline`] passed.
    DeadlineExceeded,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "request cancelled"),
            Interrupt::DeadlineExceeded => write!(f, "request deadline exceeded"),
        }
    }
}

impl std::error::Error for Interrupt {}

/// Shared cancellation flag.
///
/// Clones share the flag: cancelling any clone cancels them all. Cancellation
/// is sticky — there is deliberately no `reset`, a token represents one
/// request.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A monotonic deadline on an injectable clock.
///
/// Cloning is cheap (an `Arc` bump); clones observe the same clock, so a
/// deadline built on a [`TestClock`] expires exactly when the test advances
/// time past it — no sleeping, no flakes.
#[derive(Clone, Debug)]
pub struct Deadline {
    at_nanos: u64,
    clock: SharedClock,
}

impl Deadline {
    /// Deadline `timeout` from now on the process monotonic clock.
    pub fn after(timeout: Duration) -> Self {
        Deadline::after_on(monotonic(), timeout)
    }

    /// Deadline `timeout` from now, measured on `clock`.
    pub fn after_on(clock: SharedClock, timeout: Duration) -> Self {
        let timeout = u64::try_from(timeout.as_nanos()).unwrap_or(u64::MAX);
        let at_nanos = clock.now_nanos().saturating_add(timeout);
        Deadline { at_nanos, clock }
    }

    pub fn expired(&self) -> bool {
        self.clock.now_nanos() >= self.at_nanos
    }

    /// Time left before expiry; zero once expired.
    pub fn remaining(&self) -> Duration {
        Duration::from_nanos(self.at_nanos.saturating_sub(self.clock.now_nanos()))
    }
}

/// Deterministic interrupt source for tests: trips after N successful polls.
#[derive(Debug)]
struct Trip {
    remaining: AtomicUsize,
    kind: Interrupt,
}

/// Per-request guard polled by the hot paths between work chunks.
///
/// A default (`Guard::none()`) guard never trips and its `poll()` is a handful
/// of branches on `None`, so guarded code paths can be used unconditionally.
///
/// The guard is `Clone` and clones share the underlying token/trip state, so a
/// guard can be handed to every worker thread of a parallel stage.
#[derive(Clone, Debug, Default)]
pub struct Guard {
    token: Option<CancelToken>,
    deadline: Option<Deadline>,
    trip: Option<Arc<Trip>>,
    trace: Option<TraceContext>,
}

impl Guard {
    /// A guard that never interrupts.
    pub fn none() -> Self {
        Guard::default()
    }

    /// Guard with a deadline `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Guard::none().deadline(Deadline::after(timeout))
    }

    /// Guard with a deadline `timeout` from now, measured on `clock`.
    pub fn with_timeout_on(clock: SharedClock, timeout: Duration) -> Self {
        Guard::none().deadline(Deadline::after_on(clock, timeout))
    }

    /// Guard tied to a cancellation token.
    pub fn with_token(token: CancelToken) -> Self {
        Guard::none().token(token)
    }

    /// Per-request construction: the shape a server builds for every incoming
    /// request — an optional timeout from "now" (request admission, not
    /// connection accept) plus an optional cancellation token shared with the
    /// connection/shutdown machinery. `(None, None)` yields an unarmed guard,
    /// so callers can use this unconditionally.
    pub fn for_request(timeout: Option<Duration>, token: Option<CancelToken>) -> Self {
        Guard::for_request_on(walrus_trace::monotonic(), timeout, token)
    }

    /// [`Guard::for_request`] with the deadline measured on an explicit
    /// `clock` — the injection point that lets servers and tests drive
    /// request timeouts from a [`TestClock`].
    pub fn for_request_on(
        clock: SharedClock,
        timeout: Option<Duration>,
        token: Option<CancelToken>,
    ) -> Self {
        let mut guard = Guard::none();
        if let Some(timeout) = timeout {
            guard = guard.deadline(Deadline::after_on(clock, timeout));
        }
        if let Some(token) = token {
            guard = guard.token(token);
        }
        guard
    }

    /// Attach (or replace) a deadline.
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach (or replace) a cancellation token.
    pub fn token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Deterministic test aid: the guard reports `kind` once `polls` calls to
    /// [`Guard::poll`] have succeeded (across all clones), independent of
    /// wall-clock time. Sticky once tripped.
    pub fn trip_after(mut self, polls: usize, kind: Interrupt) -> Self {
        self.trip = Some(Arc::new(Trip { remaining: AtomicUsize::new(polls), kind }));
        self
    }

    /// Attach (or replace) a per-request trace. Pipeline stages reached
    /// through this guard will record spans and counters into it.
    pub fn tracing(mut self, trace: TraceContext) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The attached trace, if any.
    pub fn trace(&self) -> Option<&TraceContext> {
        self.trace.as_ref()
    }

    /// Open a named span on the attached trace (`None` when untraced).
    ///
    /// Spans must only be opened from the stage's orchestrating thread —
    /// never from parallel workers — so the recorded tree is identical
    /// regardless of thread count; worker clones should carry
    /// [`Guard::without_trace`].
    pub fn span(&self, name: &'static str) -> Option<Span> {
        self.trace.as_ref().map(|t| t.span(name))
    }

    /// A clone that shares every interrupt source but drops the trace:
    /// the guard handed to parallel workers, which must poll but must not
    /// open spans (span order would then depend on thread scheduling).
    pub fn without_trace(&self) -> Guard {
        let mut clone = self.clone();
        clone.trace = None;
        clone
    }

    /// True if any interrupt source is armed; lets callers skip guarded
    /// bookkeeping entirely for plain requests.
    pub fn is_armed(&self) -> bool {
        self.token.is_some() || self.deadline.is_some() || self.trip.is_some()
    }

    /// Check every interrupt source without consuming a trip count.
    ///
    /// Cancellation outranks the deadline so an explicit `cancel()` is never
    /// misreported as a timeout.
    pub fn interrupted(&self) -> Option<Interrupt> {
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                return Some(Interrupt::Cancelled);
            }
        }
        if let Some(trip) = &self.trip {
            if trip.remaining.load(Ordering::Acquire) == 0 {
                return Some(trip.kind);
            }
        }
        if let Some(deadline) = &self.deadline {
            if deadline.expired() {
                return Some(Interrupt::DeadlineExceeded);
            }
        }
        None
    }

    /// Poll for an interrupt. Hot paths call this between chunks of work;
    /// `Ok(())` means keep going.
    pub fn poll(&self) -> Result<(), Interrupt> {
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                return Err(Interrupt::Cancelled);
            }
        }
        if let Some(trip) = &self.trip {
            // Count down; once zero, stay tripped (checked_sub fails at 0 and
            // fetch_update leaves the value unchanged).
            let tripped = trip
                .remaining
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
                .is_err();
            if tripped {
                return Err(trip.kind);
            }
        }
        if let Some(deadline) = &self.deadline {
            if deadline.expired() {
                return Err(Interrupt::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Time remaining before the deadline, if one is set.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline.as_ref().map(|d| d.remaining())
    }
}

/// Per-request resource ceilings.
///
/// Defaults are generous production values sized for the ROADMAP north-star
/// workload; `unlimited()` restores pre-guard behaviour for tests and tools
/// that deliberately process huge inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budgets {
    /// Maximum pixels (width × height) a single decoded image may have.
    /// Enforced before raster allocation in the PPM decoder and again at
    /// extraction time.
    pub max_decoded_pixels: usize,
    /// Maximum regions BIRCH pre-clustering may produce for one image.
    pub max_regions_per_image: usize,
    /// Maximum total R*-tree candidate hits a single query may fan out to
    /// scoring (summed over all query-region probes, before dedup).
    pub max_index_candidates: usize,
    /// Maximum encoded size of one WAL record (header + payload), bytes.
    pub max_wal_record_bytes: usize,
}

impl Default for Budgets {
    fn default() -> Self {
        Budgets {
            // 64M pixels ≈ a 8192×8192 image; far above the paper's corpus
            // but small enough to stop decompression bombs.
            max_decoded_pixels: 64 << 20,
            max_regions_per_image: 4096,
            max_index_candidates: 1 << 20,
            max_wal_record_bytes: 256 << 20,
        }
    }
}

impl Budgets {
    /// No limits — pre-guard behaviour.
    pub fn unlimited() -> Self {
        Budgets {
            max_decoded_pixels: usize::MAX,
            max_regions_per_image: usize::MAX,
            max_index_candidates: usize::MAX,
            max_wal_record_bytes: usize::MAX,
        }
    }

    /// `Err((used, limit))` when `used` exceeds the given limit.
    pub fn check(used: usize, limit: usize) -> Result<(), (usize, usize)> {
        if used > limit {
            Err((used, limit))
        } else {
            Ok(())
        }
    }
}

/// Bounded exponential backoff for transient IO errors.
///
/// Deterministic (no jitter) so fault-injection tests replay exactly; the
/// delays are tiny because the retry loop targets in-process transient faults
/// (EINTR-style), not distributed-systems congestion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retry).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Ceiling applied to the exponential growth.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, base_delay: Duration::ZERO, max_delay: Duration::ZERO }
    }

    /// Backoff before retry number `retry` (1-based): base × 2^(retry-1),
    /// clamped to `max_delay`.
    pub fn delay_for(&self, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        let exp = retry.saturating_sub(1).min(31);
        let delay = self.base_delay.saturating_mul(1u32 << exp);
        delay.min(self.max_delay)
    }

    /// Run `op` up to `max_attempts` times, sleeping per [`delay_for`]
    /// between attempts while `is_transient` says the error is retryable.
    ///
    /// [`delay_for`]: RetryPolicy::delay_for
    pub fn run<T, E>(
        &self,
        op: impl FnMut() -> Result<T, E>,
        is_transient: impl FnMut(&E) -> bool,
    ) -> Result<T, E> {
        self.run_on(&MonotonicClock, op, is_transient)
    }

    /// [`run`](RetryPolicy::run) with the backoff sleeps taken on `clock`,
    /// so retry tests on a [`TestClock`] observe the exact backoff schedule
    /// in zero wall time.
    pub fn run_on<T, E>(
        &self,
        clock: &dyn Clock,
        mut op: impl FnMut() -> Result<T, E>,
        mut is_transient: impl FnMut(&E) -> bool,
    ) -> Result<T, E> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 1;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(err) => {
                    if attempt >= attempts || !is_transient(&err) {
                        return Err(err);
                    }
                    let delay = self.delay_for(attempt);
                    if !delay.is_zero() {
                        clock.sleep(delay);
                    }
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_guard_never_trips() {
        let guard = Guard::none();
        assert!(!guard.is_armed());
        for _ in 0..10_000 {
            assert_eq!(guard.poll(), Ok(()));
        }
        assert_eq!(guard.interrupted(), None);
        assert_eq!(guard.remaining(), None);
    }

    #[test]
    fn for_request_combines_sources() {
        assert!(!Guard::for_request(None, None).is_armed());

        let timed = Guard::for_request(Some(Duration::ZERO), None);
        assert_eq!(timed.poll(), Err(Interrupt::DeadlineExceeded));

        let token = CancelToken::new();
        let both = Guard::for_request(Some(Duration::from_secs(3600)), Some(token.clone()));
        assert_eq!(both.poll(), Ok(()));
        token.cancel();
        assert_eq!(both.poll(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn cancel_token_shared_across_clones() {
        let token = CancelToken::new();
        let guard = Guard::with_token(token.clone());
        let clone = guard.clone();
        assert_eq!(guard.poll(), Ok(()));
        token.cancel();
        assert_eq!(guard.poll(), Err(Interrupt::Cancelled));
        assert_eq!(clone.poll(), Err(Interrupt::Cancelled));
        assert_eq!(clone.interrupted(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn deadline_expires() {
        let guard = Guard::with_timeout(Duration::ZERO);
        assert!(guard.is_armed());
        assert_eq!(guard.poll(), Err(Interrupt::DeadlineExceeded));
        assert_eq!(guard.interrupted(), Some(Interrupt::DeadlineExceeded));
        assert_eq!(guard.remaining(), Some(Duration::ZERO));

        let far = Guard::with_timeout(Duration::from_secs(3600));
        assert_eq!(far.poll(), Ok(()));
        assert!(far.remaining().unwrap() > Duration::from_secs(3500));
    }

    #[test]
    fn cancellation_outranks_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let guard = Guard::with_token(token).deadline(Deadline::after(Duration::ZERO));
        assert_eq!(guard.poll(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn trip_after_is_deterministic_and_sticky() {
        let guard = Guard::none().trip_after(3, Interrupt::DeadlineExceeded);
        assert_eq!(guard.poll(), Ok(()));
        assert_eq!(guard.poll(), Ok(()));
        assert_eq!(guard.poll(), Ok(()));
        assert_eq!(guard.poll(), Err(Interrupt::DeadlineExceeded));
        assert_eq!(guard.poll(), Err(Interrupt::DeadlineExceeded));
        assert_eq!(guard.interrupted(), Some(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn trip_counts_shared_across_clones() {
        let guard = Guard::none().trip_after(2, Interrupt::Cancelled);
        let clone = guard.clone();
        assert_eq!(guard.poll(), Ok(()));
        assert_eq!(clone.poll(), Ok(()));
        assert_eq!(guard.poll(), Err(Interrupt::Cancelled));
        assert_eq!(clone.poll(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn deadline_on_test_clock_expires_exactly_when_advanced() {
        let clock = TestClock::new();
        let guard = Guard::with_timeout_on(clock.clone(), Duration::from_millis(5));
        assert_eq!(guard.poll(), Ok(()));
        assert_eq!(guard.remaining(), Some(Duration::from_millis(5)));

        clock.advance(Duration::from_millis(4));
        assert_eq!(guard.poll(), Ok(()));
        assert_eq!(guard.remaining(), Some(Duration::from_millis(1)));

        clock.advance(Duration::from_millis(1));
        assert_eq!(guard.poll(), Err(Interrupt::DeadlineExceeded));
        assert_eq!(guard.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn retry_backoff_on_test_clock_is_sleep_free_and_exact() {
        let clock = TestClock::new();
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(50),
        };
        let mut calls = 0;
        let out: Result<u32, &str> = policy.run_on(
            clock.as_ref(),
            || {
                calls += 1;
                Err("transient")
            },
            |e| *e == "transient",
        );
        assert_eq!(out, Err("transient"));
        assert_eq!(calls, 4);
        // Backoff schedule 2 + 4 + 8 ms elapsed on the test clock, not the
        // wall clock.
        assert_eq!(clock.elapsed(), Duration::from_millis(14));
    }

    #[test]
    fn guard_span_records_only_when_traced() {
        assert!(Guard::none().span("query").is_none());

        let trace = TraceContext::new(TestClock::new());
        let guard = Guard::none().tracing(trace.clone());
        {
            let span = guard.span("query").expect("traced guard opens spans");
            span.add("hits", 3);
        }
        assert!(guard.without_trace().span("query").is_none());
        let report = trace.report();
        assert_eq!(report.counter("query", "hits"), Some(3));
    }

    #[test]
    fn budgets_defaults_and_check() {
        let budgets = Budgets::default();
        assert_eq!(budgets.max_decoded_pixels, 64 << 20);
        assert!(Budgets::check(10, 10).is_ok());
        assert_eq!(Budgets::check(11, 10), Err((11, 10)));
        let unlimited = Budgets::unlimited();
        assert!(Budgets::check(usize::MAX, unlimited.max_decoded_pixels).is_ok());
    }

    #[test]
    fn retry_delays_grow_and_clamp() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(10),
        };
        assert_eq!(policy.delay_for(1), Duration::from_millis(2));
        assert_eq!(policy.delay_for(2), Duration::from_millis(4));
        assert_eq!(policy.delay_for(3), Duration::from_millis(8));
        assert_eq!(policy.delay_for(4), Duration::from_millis(10));
        assert_eq!(policy.delay_for(60), Duration::from_millis(10));
    }

    #[test]
    fn retry_run_retries_transient_only() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        };
        // Succeeds on the last allowed attempt.
        let mut calls = 0;
        let out: Result<u32, &str> = policy.run(
            || {
                calls += 1;
                if calls < 3 {
                    Err("transient")
                } else {
                    Ok(7)
                }
            },
            |e| *e == "transient",
        );
        assert_eq!(out, Ok(7));
        assert_eq!(calls, 3);

        // Permanent errors are not retried.
        let mut calls = 0;
        let out: Result<u32, &str> = policy.run(
            || {
                calls += 1;
                Err("permanent")
            },
            |e| *e == "transient",
        );
        assert_eq!(out, Err("permanent"));
        assert_eq!(calls, 1);

        // Attempts are bounded.
        let mut calls = 0;
        let out: Result<u32, &str> = policy.run(
            || {
                calls += 1;
                Err("transient")
            },
            |e| *e == "transient",
        );
        assert_eq!(out, Err("transient"));
        assert_eq!(calls, 3);
    }
}
