//! Multi-channel floating-point images.
//!
//! A [`Channel`] is a row-major `f32` grid; an [`Image`] is an ordered list
//! of equally-shaped channels tagged with a [`ColorSpace`]. Pixel values are
//! nominally in `[0, 1]` (codecs clamp on output) but intermediate math may
//! leave the range — e.g. YIQ chroma is signed.

use crate::color::ColorSpace;
use crate::{ImageError, Result};

/// A single image plane: `width * height` values in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl Channel {
    /// Creates a channel filled with `value`.
    pub fn filled(width: usize, height: usize, value: f32) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImageError::InvalidDimensions { width, height, buffer_len: None });
        }
        Ok(Self { width, height, data: vec![value; width * height] })
    }

    /// Creates an all-zero channel.
    pub fn zeros(width: usize, height: usize) -> Result<Self> {
        Self::filled(width, height, 0.0)
    }

    /// Wraps an existing row-major buffer.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Result<Self> {
        if width == 0 || height == 0 || data.len() != width * height {
            return Err(ImageError::InvalidDimensions {
                width,
                height,
                buffer_len: Some(data.len()),
            });
        }
        Ok(Self { width, height, data })
    }

    /// Builds a channel by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f32) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImageError::InvalidDimensions { width, height, buffer_len: None });
        }
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Ok(Self { width, height, data })
    }

    /// Channel width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Channel height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of pixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false: zero-sized channels cannot be constructed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Value at `(x, y)`. Panics when out of bounds, like slice indexing.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Sets the value at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = value;
    }

    /// Bounds-checked read; `None` outside the image.
    #[inline]
    pub fn try_get(&self, x: usize, y: usize) -> Option<f32> {
        (x < self.width && y < self.height).then(|| self.data[y * self.width + x])
    }

    /// Underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One image row as a slice.
    #[inline]
    pub fn row(&self, y: usize) -> &[f32] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Applies `f` to every pixel in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new channel with `f` applied to every pixel.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Self {
        Self {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Extracts the `w × h` sub-channel rooted at `(x0, y0)`.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> Result<Self> {
        if w == 0 || h == 0 || x0 + w > self.width || y0 + h > self.height {
            return Err(ImageError::OutOfBounds {
                origin: (x0, y0),
                size: (w, h),
                image: (self.width, self.height),
            });
        }
        let mut data = Vec::with_capacity(w * h);
        for y in y0..y0 + h {
            data.extend_from_slice(&self.data[y * self.width + x0..y * self.width + x0 + w]);
        }
        Ok(Self { width: w, height: h, data })
    }

    /// Nearest-neighbour resize.
    pub fn resize_nearest(&self, w: usize, h: usize) -> Result<Self> {
        if w == 0 || h == 0 {
            return Err(ImageError::InvalidDimensions { width: w, height: h, buffer_len: None });
        }
        Self::from_fn(w, h, |x, y| {
            let sx = (x * self.width / w).min(self.width - 1);
            let sy = (y * self.height / h).min(self.height - 1);
            self.get(sx, sy)
        })
    }

    /// Bilinear resize; smoother than nearest-neighbour, used when building
    /// fixed-resolution baseline signatures from arbitrary-sized images.
    pub fn resize_bilinear(&self, w: usize, h: usize) -> Result<Self> {
        if w == 0 || h == 0 {
            return Err(ImageError::InvalidDimensions { width: w, height: h, buffer_len: None });
        }
        let sx = self.width as f32 / w as f32;
        let sy = self.height as f32 / h as f32;
        Self::from_fn(w, h, |x, y| {
            let fx = ((x as f32 + 0.5) * sx - 0.5).max(0.0);
            let fy = ((y as f32 + 0.5) * sy - 0.5).max(0.0);
            let x0 = (fx as usize).min(self.width - 1);
            let y0 = (fy as usize).min(self.height - 1);
            let x1 = (x0 + 1).min(self.width - 1);
            let y1 = (y0 + 1).min(self.height - 1);
            let tx = fx - x0 as f32;
            let ty = fy - y0 as f32;
            let top = self.get(x0, y0) * (1.0 - tx) + self.get(x1, y0) * tx;
            let bot = self.get(x0, y1) * (1.0 - tx) + self.get(x1, y1) * tx;
            top * (1.0 - ty) + bot * ty
        })
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Population variance of pixel values.
    pub fn variance(&self) -> f32 {
        let mean = self.mean();
        self.data.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / self.data.len() as f32
    }

    /// Sum of squared pixel values (the "energy" preserved by orthonormal
    /// wavelet transforms).
    pub fn energy(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }
}

/// A multi-channel image: equally shaped [`Channel`]s plus a color-space tag.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    channels: Vec<Channel>,
    space: ColorSpace,
}

impl Image {
    /// Assembles an image from channels. All channels must share a shape and
    /// the channel count must match `space.channel_count()`.
    pub fn from_channels(channels: Vec<Channel>, space: ColorSpace) -> Result<Self> {
        let Some(first) = channels.first() else {
            return Err(ImageError::InvalidDimensions { width: 0, height: 0, buffer_len: None });
        };
        if channels.len() != space.channel_count() {
            return Err(ImageError::ShapeMismatch {
                left: (first.width(), first.height(), channels.len()),
                right: (first.width(), first.height(), space.channel_count()),
            });
        }
        for c in &channels {
            if c.width() != first.width() || c.height() != first.height() {
                return Err(ImageError::ShapeMismatch {
                    left: (first.width(), first.height(), channels.len()),
                    right: (c.width(), c.height(), channels.len()),
                });
            }
        }
        Ok(Self { channels, space })
    }

    /// A black (all-zero) image.
    pub fn zeros(width: usize, height: usize, space: ColorSpace) -> Result<Self> {
        let channels = (0..space.channel_count())
            .map(|_| Channel::zeros(width, height))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { channels, space })
    }

    /// Builds an image by evaluating `f(x, y) -> [f32; C]`-style closures per
    /// channel: `f(x, y, c)` returns the value of channel `c`.
    pub fn from_fn(
        width: usize,
        height: usize,
        space: ColorSpace,
        mut f: impl FnMut(usize, usize, usize) -> f32,
    ) -> Result<Self> {
        let channels = (0..space.channel_count())
            .map(|c| Channel::from_fn(width, height, |x, y| f(x, y, c)))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { channels, space })
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.channels[0].width()
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.channels[0].height()
    }

    /// Total pixel count (`width * height`).
    #[inline]
    pub fn area(&self) -> usize {
        self.width() * self.height()
    }

    /// Number of channels.
    #[inline]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The color space this image's channels are expressed in.
    #[inline]
    pub fn space(&self) -> ColorSpace {
        self.space
    }

    /// Borrow channel `c`.
    #[inline]
    pub fn channel(&self, c: usize) -> &Channel {
        &self.channels[c]
    }

    /// Mutably borrow channel `c`.
    #[inline]
    pub fn channel_mut(&mut self, c: usize) -> &mut Channel {
        &mut self.channels[c]
    }

    /// All channels.
    #[inline]
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The pixel at `(x, y)` as a channel-ordered vector.
    pub fn pixel(&self, x: usize, y: usize) -> Vec<f32> {
        self.channels.iter().map(|c| c.get(x, y)).collect()
    }

    /// Sets the pixel at `(x, y)`; `values.len()` must equal the channel count.
    pub fn set_pixel(&mut self, x: usize, y: usize, values: &[f32]) {
        assert_eq!(values.len(), self.channels.len(), "pixel arity mismatch");
        for (c, &v) in self.channels.iter_mut().zip(values) {
            c.set(x, y, v);
        }
    }

    /// Crops every channel to the `w × h` window rooted at `(x0, y0)`.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> Result<Self> {
        let channels = self
            .channels
            .iter()
            .map(|c| c.crop(x0, y0, w, h))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { channels, space: self.space })
    }

    /// Bilinear resize of every channel.
    pub fn resize_bilinear(&self, w: usize, h: usize) -> Result<Self> {
        let channels = self
            .channels
            .iter()
            .map(|c| c.resize_bilinear(w, h))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { channels, space: self.space })
    }

    /// Nearest-neighbour resize of every channel.
    pub fn resize_nearest(&self, w: usize, h: usize) -> Result<Self> {
        let channels = self
            .channels
            .iter()
            .map(|c| c.resize_nearest(w, h))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { channels, space: self.space })
    }

    /// Converts to the target color space (see [`crate::color`] for the
    /// supported conversion graph). A same-space conversion is a clone.
    pub fn to_space(&self, target: ColorSpace) -> Result<Self> {
        crate::color::convert(self, target)
    }

    /// Replaces the color-space tag without touching pixel data. Only useful
    /// in tests and codecs; prefer [`Image::to_space`].
    pub fn with_space_tag(mut self, space: ColorSpace) -> Result<Self> {
        if space.channel_count() != self.channels.len() {
            return Err(ImageError::ShapeMismatch {
                left: (self.width(), self.height(), self.channels.len()),
                right: (self.width(), self.height(), space.channel_count()),
            });
        }
        self.space = space;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_channel_has_uniform_values() {
        let c = Channel::filled(4, 3, 0.25).unwrap();
        assert_eq!(c.width(), 4);
        assert_eq!(c.height(), 3);
        assert!(c.as_slice().iter().all(|&v| v == 0.25));
    }

    #[test]
    fn zero_sized_channel_rejected() {
        assert!(Channel::zeros(0, 4).is_err());
        assert!(Channel::zeros(4, 0).is_err());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Channel::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Channel::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn from_fn_is_row_major() {
        let c = Channel::from_fn(3, 2, |x, y| (y * 10 + x) as f32).unwrap();
        assert_eq!(c.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(c.get(2, 1), 12.0);
        assert_eq!(c.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn try_get_bounds() {
        let c = Channel::zeros(2, 2).unwrap();
        assert_eq!(c.try_get(1, 1), Some(0.0));
        assert_eq!(c.try_get(2, 1), None);
        assert_eq!(c.try_get(1, 2), None);
    }

    #[test]
    fn crop_extracts_expected_window() {
        let c = Channel::from_fn(4, 4, |x, y| (y * 4 + x) as f32).unwrap();
        let sub = c.crop(1, 2, 2, 2).unwrap();
        assert_eq!(sub.as_slice(), &[9.0, 10.0, 13.0, 14.0]);
    }

    #[test]
    fn crop_out_of_bounds_rejected() {
        let c = Channel::zeros(4, 4).unwrap();
        assert!(c.crop(3, 3, 2, 2).is_err());
        assert!(c.crop(0, 0, 5, 1).is_err());
        assert!(c.crop(0, 0, 0, 1).is_err());
    }

    #[test]
    fn resize_nearest_identity() {
        let c = Channel::from_fn(4, 4, |x, y| (x + y) as f32).unwrap();
        assert_eq!(c.resize_nearest(4, 4).unwrap(), c);
    }

    #[test]
    fn resize_nearest_upscale_replicates() {
        let c = Channel::from_vec(2, 1, vec![0.0, 1.0]).unwrap();
        let up = c.resize_nearest(4, 1).unwrap();
        assert_eq!(up.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn resize_bilinear_constant_image_is_constant() {
        let c = Channel::filled(5, 7, 0.4).unwrap();
        let r = c.resize_bilinear(13, 3).unwrap();
        for &v in r.as_slice() {
            assert!((v - 0.4).abs() < 1e-6);
        }
    }

    #[test]
    fn resize_bilinear_preserves_mean_approximately() {
        let c = Channel::from_fn(16, 16, |x, y| ((x * 31 + y * 17) % 7) as f32 / 7.0).unwrap();
        let r = c.resize_bilinear(8, 8).unwrap();
        assert!((c.mean() - r.mean()).abs() < 0.05);
    }

    #[test]
    fn mean_variance_energy() {
        let c = Channel::from_vec(2, 2, vec![0.0, 1.0, 0.0, 1.0]).unwrap();
        assert_eq!(c.mean(), 0.5);
        assert!((c.variance() - 0.25).abs() < 1e-6);
        assert!((c.energy() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn image_shape_checks() {
        let a = Channel::zeros(4, 4).unwrap();
        let b = Channel::zeros(4, 5).unwrap();
        assert!(Image::from_channels(vec![a.clone(), b, a.clone()], ColorSpace::Rgb).is_err());
        assert!(Image::from_channels(vec![a.clone(), a.clone()], ColorSpace::Rgb).is_err());
        assert!(Image::from_channels(vec![a.clone(), a.clone(), a], ColorSpace::Rgb).is_ok());
    }

    #[test]
    fn image_pixel_roundtrip() {
        let mut img = Image::zeros(4, 4, ColorSpace::Rgb).unwrap();
        img.set_pixel(2, 3, &[0.1, 0.2, 0.3]);
        assert_eq!(img.pixel(2, 3), vec![0.1, 0.2, 0.3]);
        assert_eq!(img.pixel(0, 0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn image_crop_propagates_space() {
        let img = Image::zeros(8, 8, ColorSpace::Ycc).unwrap();
        let sub = img.crop(2, 2, 4, 4).unwrap();
        assert_eq!(sub.space(), ColorSpace::Ycc);
        assert_eq!(sub.width(), 4);
        assert_eq!(sub.area(), 16);
    }

    #[test]
    fn with_space_tag_checks_arity() {
        let img = Image::zeros(2, 2, ColorSpace::Rgb).unwrap();
        assert!(img.clone().with_space_tag(ColorSpace::Gray).is_err());
        assert!(img.with_space_tag(ColorSpace::Yiq).is_ok());
    }

    #[test]
    fn map_applies_function() {
        let c = Channel::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        assert_eq!(c.map(|v| v * 2.0).as_slice(), &[2.0, 4.0]);
        let mut m = c;
        m.map_in_place(|v| v + 1.0);
        assert_eq!(m.as_slice(), &[2.0, 3.0]);
    }
}
