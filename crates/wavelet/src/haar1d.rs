//! One-dimensional Haar transform (paper §3.1).
//!
//! The paper's running example: `[2, 2, 5, 7]` decomposes level by level —
//! averages `[2, 6]` then `[4]`, detail coefficients `[0, 1]` then `[2]` —
//! giving the raw transform `[4, 2, 0, 1]` (overall average first, then
//! details in order of increasing resolution). The paper then normalizes by
//! dividing each coefficient by `√2^i`, `i` being the approximation-level
//! index, yielding `[4, 2, 0, 1/√2]`.
//!
//! Note the paper's prose says "level 0 is the finest resolution level" while
//! its worked example divides the *finest* details by `√2` — the two are
//! inconsistent. We follow the worked example (which also matches the
//! companion book \[SDS96\]): detail coefficients produced at decomposition
//! depth `d` (depth 1 = first/finest averaging pass) are divided by
//! `√2^(L−d)` where `L = log2(n)`, so the example's finest details (`d = 1`,
//! `L = 2`) are divided by `√2`, and the coarsest (`d = 2`) by `√2^0 = 1`.

use crate::{is_pow2, Result, WaveletError};

/// Raw (unnormalized) Haar decomposition. Output layout:
/// `[overall_avg, detail_L, detail_{L-1} pair, …, finest details]` —
/// i.e. the paper's "single coefficient representing the overall average
/// followed by detail coefficients in order of increasing resolution".
pub fn forward(data: &[f32]) -> Result<Vec<f32>> {
    let n = data.len();
    if !is_pow2(n) {
        return Err(WaveletError::NotPowerOfTwo { len: n });
    }
    let mut out = data.to_vec();
    let mut scratch = vec![0.0f32; n];
    let mut len = n;
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            let a = out[2 * i];
            let b = out[2 * i + 1];
            scratch[i] = (a + b) / 2.0; // average
            scratch[half + i] = (b - a) / 2.0; // detail: b - average
        }
        out[..len].copy_from_slice(&scratch[..len]);
        len = half;
    }
    Ok(out)
}

/// Inverse of [`forward`]: reconstructs the original signal exactly.
pub fn inverse(coeffs: &[f32]) -> Result<Vec<f32>> {
    let n = coeffs.len();
    if !is_pow2(n) {
        return Err(WaveletError::NotPowerOfTwo { len: n });
    }
    let mut out = coeffs.to_vec();
    let mut scratch = vec![0.0f32; n];
    let mut len = 1;
    while len < n {
        for i in 0..len {
            let avg = out[i];
            let det = out[len + i];
            scratch[2 * i] = avg - det;
            scratch[2 * i + 1] = avg + det;
        }
        out[..2 * len].copy_from_slice(&scratch[..2 * len]);
        len *= 2;
    }
    Ok(out)
}

/// Applies the paper's `√2^i` normalization in place (see module docs for
/// the depth convention). The coefficient at index `k ∈ [2^(d'), 2^(d'+1))`
/// was produced at depth `L − d'`, so it is divided by `√2^(d')` … worked
/// out: detail block `j` (0 = coarsest single detail, `L−1` = finest half of
/// the array) is divided by `√2^j`. The overall average is untouched.
pub fn normalize(coeffs: &mut [f32]) {
    let n = coeffs.len();
    if n <= 1 {
        return;
    }
    debug_assert!(is_pow2(n));
    let mut block_start = 1usize;
    let mut j = 0u32;
    while block_start < n {
        let block_len = block_start; // blocks have sizes 1, 1, 2, 4, …
        let factor = (2.0f32).powf(j as f32 / 2.0);
        for c in &mut coeffs[block_start..block_start + block_len] {
            *c /= factor;
        }
        block_start += block_len;
        j += 1;
    }
}

/// Undoes [`normalize`].
pub fn denormalize(coeffs: &mut [f32]) {
    let n = coeffs.len();
    if n <= 1 {
        return;
    }
    debug_assert!(is_pow2(n));
    let mut block_start = 1usize;
    let mut j = 0u32;
    while block_start < n {
        let block_len = block_start;
        let factor = (2.0f32).powf(j as f32 / 2.0);
        for c in &mut coeffs[block_start..block_start + block_len] {
            *c *= factor;
        }
        block_start += block_len;
        j += 1;
    }
}

/// Convenience: forward transform followed by [`normalize`].
pub fn forward_normalized(data: &[f32]) -> Result<Vec<f32>> {
    let mut out = forward(data)?;
    normalize(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_raw() {
        // Paper §3.1: I = [2, 2, 5, 7] → I' = [4, 2, 0, 1].
        let out = forward(&[2.0, 2.0, 5.0, 7.0]).unwrap();
        assert_eq!(out, vec![4.0, 2.0, 0.0, 1.0]);
    }

    #[test]
    fn paper_example_normalized() {
        // Paper §3.1: normalized transform is [4, 2, 0, 1/√2].
        let out = forward_normalized(&[2.0, 2.0, 5.0, 7.0]).unwrap();
        assert_eq!(out[0], 4.0);
        assert_eq!(out[1], 2.0);
        assert_eq!(out[2], 0.0);
        assert!((out[3] - 1.0 / 2.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn forward_then_inverse_is_identity() {
        let data = vec![3.0, -1.0, 0.5, 2.25, 8.0, 8.0, -4.0, 1.0];
        let coeffs = forward(&data).unwrap();
        let back = inverse(&coeffs).unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn normalize_round_trips() {
        let data = vec![1.0, 4.0, 2.0, 8.0, 5.0, 5.0, 9.0, 0.0];
        let raw = forward(&data).unwrap();
        let mut norm = raw.clone();
        normalize(&mut norm);
        denormalize(&mut norm);
        for (a, b) in raw.iter().zip(&norm) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn constant_signal_has_zero_details() {
        let out = forward(&[5.0; 16]).unwrap();
        assert_eq!(out[0], 5.0);
        assert!(out[1..].iter().all(|&d| d == 0.0));
    }

    #[test]
    fn first_coefficient_is_mean() {
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let out = forward(&data).unwrap();
        assert!((out[0] - 4.5).abs() < 1e-6);
    }

    #[test]
    fn single_element_is_its_own_transform() {
        assert_eq!(forward(&[7.0]).unwrap(), vec![7.0]);
        assert_eq!(inverse(&[7.0]).unwrap(), vec![7.0]);
    }

    #[test]
    fn non_power_of_two_rejected() {
        assert_eq!(forward(&[1.0, 2.0, 3.0]).unwrap_err(), WaveletError::NotPowerOfTwo { len: 3 });
        assert!(forward(&[]).is_err());
        assert!(inverse(&[1.0, 2.0, 3.0, 4.0, 5.0]).is_err());
    }

    #[test]
    fn linearity_of_transform() {
        let a = vec![1.0, 3.0, 2.0, 6.0];
        let b = vec![4.0, 0.0, -2.0, 2.0];
        let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let ta = forward(&a).unwrap();
        let tb = forward(&b).unwrap();
        let tsum = forward(&sum).unwrap();
        for i in 0..4 {
            assert!((ta[i] + tb[i] - tsum[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn truncating_small_coefficients_gives_small_error() {
        // The lossy-compression property described in §3.1.
        let data: Vec<f32> = (0..64).map(|i| (i as f32 / 10.0).sin()).collect();
        let mut coeffs = forward(&data).unwrap();
        for c in coeffs.iter_mut().skip(1) {
            if c.abs() < 0.01 {
                *c = 0.0;
            }
        }
        let back = inverse(&coeffs).unwrap();
        let max_err = data.iter().zip(&back).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(max_err < 0.1, "max reconstruction error {max_err}");
    }
}
