//! Plain-text table and CSV reporting for the experiment harnesses.
//!
//! Every harness prints a human-readable aligned table followed by
//! machine-readable lines of the form `csv,<table>,<col>=<val>,…` so that
//! runs can be scraped into EXPERIMENTS.md or plotted externally without a
//! plotting dependency.

/// An in-memory table being assembled by a harness.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells; must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned human-readable form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the machine-readable CSV lines.
    pub fn render_csv(&self) -> String {
        let slug = self.title.to_lowercase().replace(' ', "_");
        let mut out = String::new();
        for row in &self.rows {
            let fields: Vec<String> = self
                .headers
                .iter()
                .zip(row)
                .map(|(h, c)| format!("{}={}", h.to_lowercase().replace(' ', "_"), c))
                .collect();
            out.push_str(&format!("csv,{slug},{}\n", fields.join(",")));
        }
        out
    }

    /// Prints both renderings to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
        print!("{}", self.render_csv());
        println!();
    }
}

/// Envelope writer for `BENCH_*.json` trajectory datapoints.
///
/// Every benchmark routes its JSON through this type so each file carries
/// the same provenance stamp — `bench` name, `host_cpus`, and the `git_rev`
/// it was measured at — and honors the same `WALRUS_BENCH_OUT` redirect.
/// Numbers without provenance are not comparable across the trajectory.
#[derive(Debug)]
pub struct BenchReport {
    name: String,
    /// `key -> already-rendered JSON value` (string values must arrive
    /// quoted, arrays/objects pre-rendered by the bench).
    fields: Vec<(String, String)>,
}

impl BenchReport {
    pub fn new(name: &str) -> Self {
        BenchReport { name: name.to_string(), fields: Vec::new() }
    }

    /// Appends one top-level field; `value` is a raw JSON fragment.
    pub fn field(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Convenience for string-typed fields (adds the quotes).
    pub fn field_str(self, key: &str, value: &str) -> Self {
        let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
        self.field(key, format!("\"{escaped}\""))
    }

    /// The full JSON document, envelope first.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", self.name));
        out.push_str(&format!("  \"host_cpus\": {},\n", host_cpus()));
        out.push_str(&format!("  \"git_rev\": \"{}\"", git_rev()));
        for (key, value) in &self.fields {
            out.push_str(&format!(",\n  \"{key}\": {value}"));
        }
        out.push_str("\n}\n");
        out
    }

    /// Writes to `WALRUS_BENCH_OUT` if set, else `default_path`; returns the
    /// path written.
    pub fn write(&self, default_path: &str) -> std::io::Result<String> {
        let path =
            std::env::var("WALRUS_BENCH_OUT").unwrap_or_else(|_| default_path.to_string());
        std::fs::write(&path, self.render())?;
        Ok(path)
    }
}

/// CPUs the host actually offers; 1 when it cannot be determined.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Short git revision of the working tree, or `"unknown"` outside a repo
/// (benchmark artifacts must say what code produced them).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Formats a float with 3 decimal places (table cells).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 4 decimal places.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "rows must align");
    }

    #[test]
    fn csv_lines_carry_headers() {
        let mut t = Table::new("My Table", &["Window Size", "Time"]);
        t.row(&["64".into(), "1.25".into()]);
        let csv = t.render_csv();
        assert_eq!(csv.trim(), "csv,my_table,window_size=64,time=1.25");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f4(0.000049), "0.0000");
    }

    #[test]
    fn bench_report_envelope_stamps_provenance() {
        let json = BenchReport::new("demo")
            .field("count", "3")
            .field_str("scale", "quick")
            .field("rows", "[\n    { \"threads\": 1 }\n  ]")
            .render();
        assert!(json.starts_with("{\n  \"bench\": \"demo\",\n"), "{json}");
        assert!(json.contains("\"host_cpus\": "), "{json}");
        assert!(json.contains("\"git_rev\": \""), "{json}");
        assert!(json.contains("\"count\": 3"), "{json}");
        assert!(json.contains("\"scale\": \"quick\""), "{json}");
        assert!(json.ends_with("\n}\n"), "{json}");
        assert!(host_cpus() >= 1);
        assert!(!git_rev().is_empty());
    }
}
