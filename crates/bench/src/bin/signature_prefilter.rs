//! **Signature prefilter effectiveness** — exact-test candidate counts and
//! query latency with the 128-bit binary-signature prefilter off vs on,
//! recorded as `BENCH_signature.json`.
//!
//! Measures, on the synthetic stand-in collection (fixed seed):
//!
//! * **candidate reduction** — leaf entries reaching the exact geometry
//!   test per query sweep, with and without the popcount prefilter (the
//!   prefilter is admissible, so the reduction is pure savings);
//! * **query latency** — p50 / p99 / mean over repeated full-pipeline
//!   queries in both modes;
//! * **determinism** — asserts both modes return bit-identical rankings
//!   before any number is written, and that the prefilter actually
//!   rejected candidates (a zero would mean the filter is wired off).
//!
//! Run: `cargo run --release -p walrus-bench --bin signature_prefilter`
//! (`WALRUS_BENCH_SCALE=full` for the larger dataset,
//! `WALRUS_BENCH_OUT=<path>` to redirect the JSON, default
//! `BENCH_signature.json`).

use walrus_bench::report::{f3, host_cpus, BenchReport, Table};
use walrus_bench::workloads::{build_walrus_db, flower_query_with_variants, retrieval_dataset, retrieval_params};
use walrus_bench::{scale, time, Scale};
use walrus_core::{Guard, QueryOutcome, TraceContext};
use walrus_imagery::Image;

struct ModeResult {
    rejected: u64,
    exact: u64,
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
    outcomes: Vec<QueryOutcome>,
}

fn main() {
    let sc = scale();
    let dataset = retrieval_dataset(sc);
    let mut db = build_walrus_db(&dataset, retrieval_params());
    let (query, variants) = flower_query_with_variants(4);
    let queries: Vec<&Image> = std::iter::once(&query).chain(variants.iter()).collect();
    let query_reps = match sc {
        Scale::Quick => 30,
        Scale::Full => 50,
    };
    println!(
        "Signature prefilter effectiveness: {} images, {} regions, host cpus: {}\n",
        db.len(),
        db.num_regions(),
        host_cpus(),
    );

    // Counters + reference outcomes from one traced pass per query per mode.
    let traced_pass = |db: &mut walrus_core::ImageDatabase, prefilter: bool| -> ModeResult {
        db.set_prefilter(Some(prefilter));
        let mut rejected = 0u64;
        let mut exact = 0u64;
        let mut outcomes = Vec::with_capacity(queries.len());
        for q in &queries {
            let trace = TraceContext::monotonic();
            let guard = Guard::none().tracing(trace.clone());
            outcomes.push(db.query_guarded(q, &guard).expect("query pipeline succeeds"));
            let report = trace.report();
            for span in &report.spans {
                for (name, v) in &span.counters {
                    match *name {
                        "signatures_rejected" => rejected += v,
                        "candidates_exact" => exact += v,
                        _ => {}
                    }
                }
            }
        }
        ModeResult { rejected, exact, p50_ms: 0.0, p99_ms: 0.0, mean_ms: 0.0, outcomes }
    };
    let mut off = traced_pass(&mut db, false);
    let mut on = traced_pass(&mut db, true);

    // Latency from untraced repetitions, modes interleaved per repetition so
    // allocator/cache drift hits both equally. First repetition per mode is
    // warmup and discarded.
    let mut lat_off: Vec<f64> = Vec::with_capacity(queries.len() * query_reps);
    let mut lat_on: Vec<f64> = Vec::with_capacity(queries.len() * query_reps);
    for rep in 0..=query_reps {
        for prefilter in [false, true] {
            db.set_prefilter(Some(prefilter));
            let sink = if prefilter { &mut lat_on } else { &mut lat_off };
            for q in &queries {
                // Min of three back-to-back runs: the work is deterministic,
                // so the minimum strips scheduler hiccups (this is a 1-cpu
                // container in CI) without biasing either mode.
                let best = (0..3)
                    .map(|_| time(|| db.query(q).expect("query pipeline succeeds")).1)
                    .fold(f64::INFINITY, f64::min);
                if rep > 0 {
                    sink.push(best * 1e3);
                }
            }
        }
    }
    for (lat, mode) in [(&mut lat_off, &mut off), (&mut lat_on, &mut on)] {
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        mode.p50_ms = percentile(lat, 50.0);
        mode.p99_ms = percentile(lat, 99.0);
        mode.mean_ms = lat.iter().sum::<f64>() / lat.len() as f64;
    }

    // The prefilter is admissible: bit-identical rankings, or no numbers.
    assert_eq!(off.outcomes.len(), on.outcomes.len());
    for (a, b) in off.outcomes.iter().zip(&on.outcomes) {
        assert_eq!(a.stats, b.stats, "prefilter changed query stats");
        assert_eq!(a.matches.len(), b.matches.len(), "prefilter changed match count");
        for (x, y) in a.matches.iter().zip(&b.matches) {
            assert_eq!(x.image_id, y.image_id, "prefilter changed the ranking");
            assert_eq!(
                x.similarity.to_bits(),
                y.similarity.to_bits(),
                "prefilter changed a similarity"
            );
        }
    }
    assert_eq!(off.rejected, 0, "prefilter off must reject nothing");
    assert!(on.rejected > 0, "prefilter rejected nothing on the seeded workload");
    assert_eq!(
        off.exact,
        on.exact + on.rejected,
        "rejected + exact-tested must cover exactly the unfiltered candidate set"
    );
    let reduction = off.exact as f64 / on.exact.max(1) as f64;

    let mut table = Table::new(
        "Signature Prefilter",
        &["mode", "exact_tests", "rejected", "p50_ms", "p99_ms", "mean_ms"],
    );
    table.row(&[
        "off".into(),
        off.exact.to_string(),
        off.rejected.to_string(),
        f3(off.p50_ms),
        f3(off.p99_ms),
        f3(off.mean_ms),
    ]);
    table.row(&[
        "on".into(),
        on.exact.to_string(),
        on.rejected.to_string(),
        f3(on.p50_ms),
        f3(on.p99_ms),
        f3(on.mean_ms),
    ]);
    table.print();
    println!("\nexact-test candidate reduction: {reduction:.2}x");

    let mode_json = |m: &ModeResult| {
        format!(
            "{{ \"candidates_exact\": {}, \"signatures_rejected\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_ms\": {:.3} }}",
            m.exact, m.rejected, m.p50_ms, m.p99_ms, m.mean_ms
        )
    };
    let report = BenchReport::new("signature_prefilter")
        .field_str("scale", if sc == Scale::Full { "full" } else { "quick" })
        .field(
            "dataset",
            format!(
                "{{ \"images\": {}, \"regions\": {}, \"query_samples\": {} }}",
                db.len(),
                db.num_regions(),
                queries.len() * query_reps
            ),
        )
        .field("determinism_checked", "true")
        .field("prefilter_off", mode_json(&off))
        .field("prefilter_on", mode_json(&on))
        .field("candidate_reduction", format!("{reduction:.3}"))
        .field(
            "speedup_p50",
            format!("{:.3}", off.p50_ms / on.p50_ms.max(f64::MIN_POSITIVE)),
        )
        .field(
            "speedup_p99",
            format!("{:.3}", off.p99_ms / on.p99_ms.max(f64::MIN_POSITIVE)),
        );
    let out_path =
        report.write("BENCH_signature.json").expect("benchmark output path is writable");
    println!("wrote {out_path}");
}

/// Percentile by linear interpolation over a sorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}
