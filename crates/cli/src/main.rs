//! `walrus` — command-line WALRUS image indexing and similarity search.
//!
//! ```text
//! walrus index  <db> <image.ppm>...   build/extend a database from PPM/PGM files
//! walrus query  <db> <image.ppm>      rank database images by similarity
//! walrus explain <db> <image.ppm>     run a query and print its stage trace
//! walrus scene  <db> <image.ppm> <x> <y> <w> <h>
//!                                     query by a marked sub-scene
//! walrus remove <db> <id>             remove an image by id
//! walrus info   <db>                  database statistics
//! walrus demo   <db>                  populate with synthetic demo images
//! walrus open   <dir>                 create/open a crash-safe store directory
//! walrus recover <dir>                recover a store and report what was repaired
//! walrus compact <dir>                fold the write-ahead log into a snapshot
//! walrus rebalance <dir> --shards <M> migrate a sharded store to M shards
//! walrus scrub  <dir>                 verify snapshot/WAL integrity, read-only
//! walrus serve  <dir>                 serve a store over HTTP (see --addr)
//! walrus bench-http                   HTTP round-trip benchmark -> BENCH_server.json
//! ```
//!
//! `<db>` is either a single snapshot file (e.g. `db.walrus`) or a *store
//! directory* managed by the durability layer (snapshot + write-ahead log;
//! create one with `walrus open mystore`). Commands auto-detect which they
//! were given: an existing directory is treated as a durable store.
//!
//! Options (before the subcommand arguments):
//!   `-k <n>`          number of results for `query`/`scene` (default 10)
//!   `--eps <f>`       querying epsilon override for `query`
//!   `--window <min> <max>`  sliding-window size range (default 8 32)
//!   `--space <rgb|ycc|yiq|hsv|gray>`  color space (default ycc)
//!   `--threads <n>`   worker threads for extraction/ingest/query
//!                     (0 = auto: `WALRUS_THREADS`, then CPU count)
//!   `--timeout-ms <n>`  request deadline; a query that hits it returns the
//!                     best-so-far partial ranking, an `index` batch aborts
//!                     without mutating the database
//!   `--max-pixels <n>`  reject images whose header declares more pixels,
//!                     before any raster memory is allocated
//!   `--addr <host:port>`  bind address for `serve` (default 127.0.0.1:8167)
//!
//! `index` with several images extracts their regions **in parallel** and
//! indexes them in one batch; results are identical to one-at-a-time
//! indexing.
//!
//! Argument parsing is hand-rolled: the workspace policy is zero
//! dependencies beyond the approved list, and the grammar is tiny.

use std::process::ExitCode;
use std::time::Duration;
use walrus_core::persist;
use walrus_core::recovery::{DurableDatabase, RecoveryReport};
use walrus_core::scene_query::SceneRect;
use walrus_core::sharded::{is_sharded_store, ShardRecovery};
use walrus_core::{
    scrub_store, Guard, ImageDatabase, QueryOptions, QueryOutcome, ResultStatus, ShardedStore,
    WalrusParams,
};
use walrus_imagery::{ppm, ColorSpace, Image};
use walrus_wavelet::SlidingParams;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    k: usize,
    eps: Option<f32>,
    omega_min: usize,
    omega_max: usize,
    space: ColorSpace,
    threads: usize,
    timeout_ms: Option<u64>,
    max_pixels: Option<usize>,
    addr: String,
    /// `--shards <n>`: shard count when creating a store (`None` = consult
    /// `WALRUS_SHARDS`, then fall back to the legacy monolithic layout).
    shards: Option<usize>,
    /// `--shard <i>`: target one shard in `recover` / `compact`.
    shard: Option<usize>,
    /// `--reactor`: serve with the event-driven epoll reactor instead of
    /// thread-per-connection (also via `WALRUS_REACTOR=1`).
    reactor: bool,
    /// `--cache-capacity <n>`: query-result cache entries (0 disables;
    /// `None` = server default).
    cache_capacity: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            k: 10,
            eps: None,
            omega_min: 8,
            omega_max: 32,
            space: ColorSpace::Ycc,
            threads: 0,
            timeout_ms: None,
            max_pixels: None,
            addr: "127.0.0.1:8167".to_string(),
            shards: None,
            shard: None,
            reactor: false,
            cache_capacity: None,
        }
    }
}

impl Options {
    /// The lifecycle guard for one request: a deadline when `--timeout-ms`
    /// was given, otherwise unarmed.
    fn guard(&self) -> Guard {
        match self.timeout_ms {
            Some(ms) => Guard::with_timeout(Duration::from_millis(ms)),
            None => Guard::none(),
        }
    }

    /// Pixel ceiling for decoding untrusted images (`--max-pixels`,
    /// defaulting to the engine-wide budget).
    fn pixel_budget(&self) -> usize {
        self.max_pixels.unwrap_or(walrus_core::Budgets::default().max_decoded_pixels)
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let (opts, rest) = parse_options(args)?;
    let Some((command, rest)) = rest.split_first() else {
        print_usage();
        return Err("missing subcommand".into());
    };
    match command.as_str() {
        "index" => cmd_index(&opts, rest),
        "query" => cmd_query(&opts, rest),
        "explain" => cmd_explain(&opts, rest),
        "scene" => cmd_scene(&opts, rest),
        "remove" => cmd_remove(rest),
        "info" => cmd_info(&opts, rest),
        "demo" => cmd_demo(&opts, rest),
        "open" => cmd_open(&opts, rest),
        "recover" => cmd_recover(&opts, rest),
        "compact" => cmd_compact(&opts, rest),
        "rebalance" => cmd_rebalance(&opts, rest),
        "scrub" => cmd_scrub(&opts, rest),
        "serve" => cmd_serve(&opts, rest),
        "bench-http" => cmd_bench_http(&opts, rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?} (try `walrus help`)")),
    }
}

fn parse_options(args: &[String]) -> Result<(Options, &[String]), String> {
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-k" => {
                opts.k = parse_at(args, i + 1, "-k")?;
                i += 2;
            }
            "--eps" => {
                opts.eps = Some(parse_at(args, i + 1, "--eps")?);
                i += 2;
            }
            "--threads" => {
                opts.threads = parse_at(args, i + 1, "--threads")?;
                i += 2;
            }
            "--timeout-ms" => {
                opts.timeout_ms = Some(parse_at(args, i + 1, "--timeout-ms")?);
                i += 2;
            }
            "--max-pixels" => {
                let px: usize = parse_at(args, i + 1, "--max-pixels")?;
                if px == 0 {
                    return Err("--max-pixels must be >= 1".into());
                }
                opts.max_pixels = Some(px);
                i += 2;
            }
            "--addr" => {
                opts.addr = args.get(i + 1).ok_or("--addr needs a value")?.clone();
                i += 2;
            }
            "--shards" => {
                let n: usize = parse_at(args, i + 1, "--shards")?;
                if n == 0 {
                    return Err("--shards must be >= 1".into());
                }
                opts.shards = Some(n);
                i += 2;
            }
            "--shard" => {
                opts.shard = Some(parse_at(args, i + 1, "--shard")?);
                i += 2;
            }
            "--reactor" => {
                opts.reactor = true;
                i += 1;
            }
            "--cache-capacity" => {
                opts.cache_capacity = Some(parse_at(args, i + 1, "--cache-capacity")?);
                i += 2;
            }
            "--window" => {
                opts.omega_min = parse_at(args, i + 1, "--window min")?;
                opts.omega_max = parse_at(args, i + 2, "--window max")?;
                i += 3;
            }
            "--space" => {
                let name = args.get(i + 1).ok_or("--space needs a value")?;
                opts.space = match name.as_str() {
                    "rgb" => ColorSpace::Rgb,
                    "ycc" => ColorSpace::Ycc,
                    "yiq" => ColorSpace::Yiq,
                    "hsv" => ColorSpace::Hsv,
                    "gray" => ColorSpace::Gray,
                    other => return Err(format!("unknown color space {other:?}")),
                };
                i += 2;
            }
            _ => break,
        }
    }
    Ok((opts, &args[i..]))
}

fn parse_at<T: std::str::FromStr>(args: &[String], i: usize, what: &str) -> Result<T, String> {
    args.get(i)
        .ok_or_else(|| format!("{what} needs a value"))?
        .parse()
        .map_err(|_| format!("{what}: cannot parse {:?}", args[i]))
}

fn params_for(opts: &Options) -> Result<WalrusParams, String> {
    let mut params = WalrusParams {
        sliding: SlidingParams {
            s: 2,
            omega_min: opts.omega_min,
            omega_max: opts.omega_max,
            stride: 4,
        },
        color_space: opts.space,
        threads: opts.threads,
        ..WalrusParams::paper_defaults()
    };
    params.budgets.max_decoded_pixels = opts.pixel_budget();
    params.validate().map_err(|e| e.to_string())?;
    Ok(params)
}

/// A database handle: a plain snapshot file, a monolithic durable store
/// directory, or an N-shard durable store (detected by its `MANIFEST`).
/// Mutations on durable stores commit through their WALs; snapshot files
/// are saved explicitly (and atomically) after mutating.
enum DbHandle {
    File { db: Box<ImageDatabase>, path: String },
    Durable(Box<DurableDatabase>),
    Sharded(Box<ShardedStore>),
}

impl DbHandle {
    /// The in-memory database of a single-directory handle. Sharded stores
    /// have no single inner database; commands that support them route
    /// through the other accessors instead.
    fn db(&self) -> Result<&ImageDatabase, String> {
        match self {
            DbHandle::File { db, .. } => Ok(db),
            DbHandle::Durable(store) => Ok(store.db()),
            DbHandle::Sharded(_) => {
                Err("this operation is not supported on a sharded store".into())
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            DbHandle::File { db, .. } => db.len(),
            DbHandle::Durable(store) => store.len(),
            DbHandle::Sharded(store) => store.len(),
        }
    }

    fn num_regions(&self) -> usize {
        match self {
            DbHandle::File { db, .. } => db.num_regions(),
            DbHandle::Durable(store) => store.db().num_regions(),
            DbHandle::Sharded(store) => store.num_regions(),
        }
    }

    /// Region count of one image (0 when unknown or unreachable).
    fn image_regions(&self, id: usize) -> usize {
        match self {
            DbHandle::File { db, .. } => db.image(id).map(|i| i.regions.len()).unwrap_or(0),
            DbHandle::Durable(store) => {
                store.db().image(id).map(|i| i.regions.len()).unwrap_or(0)
            }
            DbHandle::Sharded(store) => {
                store.image_meta(id).ok().flatten().map(|m| m.regions).unwrap_or(0)
            }
        }
    }

    fn insert_image(&mut self, name: &str, image: &Image) -> Result<usize, String> {
        match self {
            DbHandle::File { db, .. } => db.insert_image(name, image),
            DbHandle::Durable(store) => store.insert_image(name, image),
            DbHandle::Sharded(store) => store.insert_image(name, image),
        }
        .map_err(|e| e.to_string())
    }

    /// Batch insert with parallel region extraction, under the request
    /// guard (see [`ImageDatabase::insert_images_batch_guarded`]). The
    /// batch is all-or-nothing if the deadline fires.
    fn insert_images_batch(
        &mut self,
        items: &[(&str, &Image)],
        guard: &Guard,
    ) -> Result<Vec<usize>, String> {
        match self {
            DbHandle::File { db, .. } => db.insert_images_batch_guarded(items, guard),
            DbHandle::Durable(store) => store.insert_images_batch_guarded(items, guard),
            DbHandle::Sharded(store) => store.insert_images_batch_guarded(items, guard),
        }
        .map_err(|e| e.to_string())
    }

    fn remove_image(&mut self, id: usize) -> Result<(), String> {
        match self {
            DbHandle::File { db, .. } => db.remove_image(id),
            DbHandle::Durable(store) => store.remove_image(id),
            DbHandle::Sharded(store) => store.remove_image(id),
        }
        .map_err(|e| e.to_string())
    }

    /// Full-image query honoring `--eps` / `--timeout-ms`, routed through
    /// whichever engine this handle fronts.
    fn query(&self, image: &Image, opts: &Options, guard: &Guard) -> Result<QueryOutcome, String> {
        match self {
            DbHandle::File { db, .. } => match opts.eps {
                Some(eps) => db.query_with_epsilon_guarded(image, eps, guard),
                None => db.query_guarded(image, guard),
            },
            DbHandle::Durable(store) => match opts.eps {
                Some(eps) => store.db().query_with_epsilon_guarded(image, eps, guard),
                None => store.db().query_guarded(image, guard),
            },
            DbHandle::Sharded(store) => store.query_with_options_guarded(
                image,
                &QueryOptions { epsilon: opts.eps, ..QueryOptions::default() },
                guard,
            ),
        }
        .map_err(|e| e.to_string())
    }

    fn params(&self) -> WalrusParams {
        match self {
            DbHandle::File { db, .. } => *db.params(),
            DbHandle::Durable(store) => *store.db().params(),
            DbHandle::Sharded(store) => store.params(),
        }
    }

    /// Persists a snapshot-file handle; durable stores already committed
    /// every mutation through the WAL.
    fn finish(&self) -> Result<(), String> {
        match self {
            DbHandle::File { db, path } => {
                persist::save_to_file(db, path).map_err(|e| format!("cannot save {path}: {e}"))
            }
            DbHandle::Durable(_) | DbHandle::Sharded(_) => Ok(()),
        }
    }
}

fn is_store_dir(path: &str) -> bool {
    std::path::Path::new(path).is_dir()
}

fn open_durable(path: &str, opts: &Options) -> Result<(DurableDatabase, RecoveryReport), String> {
    DurableDatabase::open(path, params_for(opts)?)
        .map_err(|e| format!("cannot open store {path}: {e}"))
}

/// Shard count to use when a command touches a store: `--shards` wins, then
/// the `WALRUS_SHARDS` environment variable; `0` means "legacy monolithic
/// layout" (and, on an existing sharded store, "whatever the manifest
/// says").
fn resolved_shards(opts: &Options) -> Result<usize, String> {
    if let Some(n) = opts.shards {
        return Ok(n);
    }
    match std::env::var("WALRUS_SHARDS") {
        Ok(raw) => raw
            .parse::<usize>()
            .map_err(|_| format!("WALRUS_SHARDS: cannot parse {raw:?}")),
        Err(_) => Ok(0),
    }
}

fn open_sharded(
    path: &str,
    opts: &Options,
    shards: usize,
) -> Result<(ShardedStore, Vec<ShardRecovery>), String> {
    ShardedStore::open(path, params_for(opts)?, shards)
        .map_err(|e| format!("cannot open sharded store {path}: {e}"))
}

/// True when `path` should open as a sharded store: it already is one, or a
/// shard count was requested for a path that does not exist yet.
fn wants_sharded(path: &str, shards: usize) -> bool {
    is_sharded_store(std::path::Path::new(path))
        || (shards > 0 && !std::path::Path::new(path).exists())
}

/// Opens an existing database (file or store directory) read-only.
fn load_handle(path: &str, opts: &Options) -> Result<DbHandle, String> {
    let shards = resolved_shards(opts)?;
    if is_sharded_store(std::path::Path::new(path)) {
        let (store, recoveries) = open_sharded(path, opts, shards)?;
        warn_if_degraded(path, &recoveries);
        Ok(DbHandle::Sharded(Box::new(store)))
    } else if is_store_dir(path) {
        let (store, _) = open_durable(path, opts)?;
        Ok(DbHandle::Durable(Box::new(store)))
    } else {
        let db =
            persist::load_from_file(path).map_err(|e| format!("cannot load {path}: {e}"))?;
        Ok(DbHandle::File { db: Box::new(db), path: path.to_string() })
    }
}

/// Opens a database for mutation, creating a store if the path does not
/// exist yet: sharded when a shard count was requested, a snapshot file
/// otherwise.
fn load_or_create_handle(path: &str, opts: &Options) -> Result<DbHandle, String> {
    let shards = resolved_shards(opts)?;
    if wants_sharded(path, shards) {
        let (store, recoveries) = open_sharded(path, opts, shards)?;
        warn_if_degraded(path, &recoveries);
        Ok(DbHandle::Sharded(Box::new(store)))
    } else if is_store_dir(path) || std::path::Path::new(path).exists() {
        load_handle(path, opts)
    } else {
        let db = ImageDatabase::new(params_for(opts)?).map_err(|e| e.to_string())?;
        Ok(DbHandle::File { db: Box::new(db), path: path.to_string() })
    }
}

fn load_image(path: &str, opts: &Options) -> Result<Image, String> {
    // The pixel ceiling is checked against the *declared* header dimensions,
    // before any raster allocation, so hostile headers cannot balloon memory.
    ppm::load_netpbm_limited(path, opts.pixel_budget())
        .map_err(|e| format!("cannot read {path}: {e}"))
}

fn note_if_partial(status: &ResultStatus) {
    match status {
        ResultStatus::Complete => {}
        ResultStatus::Partial => {
            println!("note: deadline expired mid-query; showing the best-so-far partial ranking");
        }
        ResultStatus::Degraded { shards_unavailable } => {
            let shards: Vec<String> =
                shards_unavailable.iter().map(|s| s.to_string()).collect();
            println!(
                "note: shard(s) {} are quarantined; ranking covers the healthy shards only",
                shards.join(", ")
            );
        }
    }
}

/// Per-shard recovery summary for sharded opens.
fn print_shard_recoveries(recoveries: &[ShardRecovery]) {
    for r in recoveries {
        match (&r.report, &r.error) {
            (Some(report), _) => {
                println!(
                    "shard {:03}: snapshot {} (lsn {}), {} wal record(s) replayed, {} skipped{}",
                    r.shard,
                    if report.snapshot_loaded { "loaded" } else { "absent" },
                    report.snapshot_lsn,
                    report.records_replayed,
                    report.records_skipped,
                    if report.torn_tail_truncated {
                        format!(", torn tail truncated ({} bytes)", report.truncated_bytes)
                    } else {
                        String::new()
                    },
                );
            }
            (None, Some(error)) => println!("shard {:03}: QUARANTINED: {error}", r.shard),
            (None, None) => {}
        }
    }
}

/// One-line stderr warning when an open store has quarantined shards.
fn warn_if_degraded(path: &str, recoveries: &[ShardRecovery]) {
    let quarantined: Vec<String> = recoveries
        .iter()
        .filter(|r| r.error.is_some())
        .map(|r| r.shard.to_string())
        .collect();
    if !quarantined.is_empty() {
        eprintln!(
            "warning: store {path} is degraded; shard(s) {} quarantined \
             (run `walrus recover {path} --shard <i>`)",
            quarantined.join(", ")
        );
    }
}

fn print_report(report: &RecoveryReport) {
    println!(
        "recovery: snapshot {} (lsn {}), {} wal record(s) replayed, {} skipped",
        if report.snapshot_loaded { "loaded" } else { "absent" },
        report.snapshot_lsn,
        report.records_replayed,
        report.records_skipped,
    );
    if report.torn_tail_truncated {
        println!("recovery: truncated a torn wal tail ({} bytes)", report.truncated_bytes);
    }
}

fn cmd_index(opts: &Options, rest: &[String]) -> Result<(), String> {
    let Some((db_path, images)) = rest.split_first() else {
        return Err("usage: walrus index <db> <image.ppm>...".into());
    };
    if images.is_empty() {
        return Err("no images to index".into());
    }
    let mut handle = load_or_create_handle(db_path, opts)?;
    let loaded: Vec<(&str, Image)> = images
        .iter()
        .map(|path| load_image(path, opts).map(|img| (path.as_str(), img)))
        .collect::<Result<_, _>>()?;
    let items: Vec<(&str, &Image)> = loaded.iter().map(|(p, i)| (*p, i)).collect();
    let ids = handle
        .insert_images_batch(&items, &opts.guard())
        .map_err(|e| format!("batch index: {e}"))?;
    for (path, id) in images.iter().zip(&ids) {
        println!("indexed {path} as id {id} ({} regions)", handle.image_regions(*id));
    }
    handle.finish()?;
    println!(
        "database {db_path}: {} images, {} regions",
        handle.len(),
        handle.num_regions()
    );
    Ok(())
}

fn cmd_query(opts: &Options, rest: &[String]) -> Result<(), String> {
    let [db_path, image_path] = rest else {
        return Err("usage: walrus query <db> <image.ppm>".into());
    };
    let handle = load_handle(db_path, opts)?;
    let query = load_image(image_path, opts)?;
    let guard = opts.guard();
    let outcome = handle.query(&query, opts, &guard)?;
    println!(
        "query regions: {}; matching regions: {}; candidate images: {}",
        outcome.stats.query_regions,
        outcome.stats.total_matching_regions,
        outcome.stats.distinct_images
    );
    note_if_partial(&outcome.status);
    print_ranking(outcome.matches.iter().take(opts.k));
    Ok(())
}

/// `walrus explain <db> <query.ppm>`: runs the query with tracing enabled
/// and prints the per-stage span tree (times + counters) plus how much of
/// each request budget the query consumed.
fn cmd_explain(opts: &Options, rest: &[String]) -> Result<(), String> {
    let [db_path, image_path] = rest else {
        return Err("usage: walrus explain <db> <image.ppm>".into());
    };
    let handle = load_handle(db_path, opts)?;
    let query = load_image(image_path, opts)?;
    let trace = walrus_core::TraceContext::monotonic();
    let guard = opts.guard().tracing(trace.clone());
    let outcome = handle.query(&query, opts, &guard)?;
    let report = trace.report();

    println!("stage trace for {image_path} against {db_path}:");
    print!("{}", report.render());

    let budgets = handle.params().budgets;
    let used = |span: &str, counter: &str| report.counter(span, counter).unwrap_or(0);
    println!("budget consumption:");
    println!(
        "  decoded pixels:    {} / {}",
        used("decode", "pixels"),
        budgets.max_decoded_pixels
    );
    println!(
        "  regions per image: {} / {}",
        used("birch", "clusters"),
        budgets.max_regions_per_image
    );
    println!(
        "  index candidates:  {} / {}",
        used("rstar_probe", "hits"),
        budgets.max_index_candidates
    );
    match opts.timeout_ms {
        Some(ms) => {
            let spent = report.duration_micros("query").unwrap_or(0);
            println!("  deadline:          {} us spent of {} ms", spent, ms);
        }
        None => println!("  deadline:          none"),
    }

    // Summed across every probe span (a sharded store records one per
    // shard), so the numbers add up for any store shape.
    let sum = |counter: &str| -> u64 {
        report
            .spans
            .iter()
            .flat_map(|s| s.counters.iter())
            .filter(|(name, _)| *name == counter)
            .map(|(_, v)| *v)
            .sum()
    };
    let rejected = sum("signatures_rejected");
    let exact = sum("candidates_exact");
    println!("signature prefilter:");
    println!("  candidates rejected: {rejected}");
    println!("  exact tests run:     {exact}");

    note_if_partial(&outcome.status);
    print_ranking(outcome.matches.iter().take(opts.k));
    Ok(())
}

fn cmd_scene(opts: &Options, rest: &[String]) -> Result<(), String> {
    let [db_path, image_path, x, y, w, h] = rest else {
        return Err("usage: walrus scene <db> <image.ppm> <x> <y> <w> <h>".into());
    };
    let handle = load_handle(db_path, opts)?;
    let query = load_image(image_path, opts)?;
    let rect = SceneRect {
        x: x.parse().map_err(|_| "bad x")?,
        y: y.parse().map_err(|_| "bad y")?,
        width: w.parse().map_err(|_| "bad w")?,
        height: h.parse().map_err(|_| "bad h")?,
    };
    // Scene queries need the single in-memory database; `db()` reports a
    // clear error on sharded stores, where they are not supported yet.
    let outcome = handle
        .db()?
        .query_scene_guarded(&query, rect, 0.0, &opts.guard())
        .map_err(|e| e.to_string())?;
    println!("scene {rect:?}: {} candidate images", outcome.stats.distinct_images);
    note_if_partial(&outcome.status);
    print_ranking(outcome.matches.iter().take(opts.k));
    Ok(())
}

fn cmd_remove(rest: &[String]) -> Result<(), String> {
    let [db_path, id] = rest else {
        return Err("usage: walrus remove <db> <id>".into());
    };
    let mut handle = load_handle(db_path, &Options::default())?;
    let id: usize = id.parse().map_err(|_| "bad id")?;
    handle.remove_image(id)?;
    handle.finish()?;
    println!("removed id {id}; {} images remain", handle.len());
    Ok(())
}

fn cmd_info(opts: &Options, rest: &[String]) -> Result<(), String> {
    let [db_path] = rest else {
        return Err("usage: walrus info <db>".into());
    };
    let handle = load_handle(db_path, opts)?;
    let p = handle.params();
    println!("database: {db_path}");
    println!("  images:  {}", handle.len());
    println!("  regions: {}", handle.num_regions());
    if let DbHandle::Durable(store) = &handle {
        println!(
            "  wal:     {} bytes, {} record(s) since last checkpoint",
            store.wal_len(),
            store.records_since_checkpoint()
        );
    }
    if let DbHandle::Sharded(store) = &handle {
        println!(
            "  wal:     {} bytes, {} record(s) since last checkpoint",
            store.wal_len(),
            store.records_since_checkpoint()
        );
        println!("  shards:  {}", store.shard_count());
        let status = store.rebalance_status();
        println!(
            "  layout:  epoch {} ({} committed rebalance(s)){}",
            status.epoch,
            status.epoch,
            if status.rebalancing {
                format!(
                    ", MIGRATING to {} shard(s) ({} built)",
                    status.target_shards, status.shards_migrated
                )
            } else {
                String::new()
            }
        );
        for h in store.shard_health() {
            match h.error {
                None => println!(
                    "    shard {:03}: healthy, {} image(s), wal {} bytes",
                    h.shard, h.images, h.wal_bytes
                ),
                Some(error) => println!("    shard {:03}: QUARANTINED: {error}", h.shard),
            }
        }
    }
    println!(
        "  params:  windows {}..{} stride {}, signature {}x{} per {} channel(s) ({}), \
         eps_c {}, eps {}, tau {}",
        p.sliding.omega_min,
        p.sliding.omega_max,
        p.sliding.stride,
        p.sliding.s,
        p.sliding.s,
        p.color_space.channel_count(),
        p.color_space.name(),
        p.cluster_epsilon,
        p.query_epsilon,
        p.tau,
    );
    match &handle {
        DbHandle::Sharded(store) => {
            for id in 0..store.next_id() {
                // Quarantined-shard ids are unknowable; skip them silently —
                // the shard listing above already says which are missing.
                if let Ok(Some(meta)) = store.image_meta(id) {
                    println!(
                        "  [{}] {} {}x{} ({} regions)",
                        meta.id, meta.name, meta.width, meta.height, meta.regions
                    );
                }
            }
        }
        _ => {
            for img in handle.db()?.image_slots().iter().flatten() {
                println!(
                    "  [{}] {} {}x{} ({} regions)",
                    img.id,
                    img.name,
                    img.width,
                    img.height,
                    img.regions.len()
                );
            }
        }
    }
    Ok(())
}

fn cmd_demo(opts: &Options, rest: &[String]) -> Result<(), String> {
    use walrus_imagery::synth::dataset::{DatasetSpec, ImageClass, SyntheticDataset};
    let [db_path] = rest else {
        return Err("usage: walrus demo <db>".into());
    };
    let mut handle = load_or_create_handle(db_path, opts)?;
    let dataset = SyntheticDataset::generate(DatasetSpec {
        images_per_class: 4,
        width: 128,
        height: 96,
        seed: 7,
        classes: ImageClass::ALL.to_vec(),
    })
    .map_err(|e| e.to_string())?;
    for img in &dataset.images {
        handle.insert_image(&img.name, &img.image)?;
    }
    handle.finish()?;
    println!("populated {db_path} with {} synthetic images", dataset.len());
    println!("try: walrus info {db_path}");
    Ok(())
}

fn cmd_open(opts: &Options, rest: &[String]) -> Result<(), String> {
    let [dir] = rest else {
        return Err("usage: walrus [--shards n] open <dir>".into());
    };
    let shards = resolved_shards(opts)?;
    if wants_sharded(dir, shards) {
        let (store, recoveries) = open_sharded(dir, opts, shards)?;
        print_shard_recoveries(&recoveries);
        println!(
            "sharded store {dir}: {} shard(s), {} images, {} regions, wal {} bytes",
            store.shard_count(),
            store.len(),
            store.num_regions(),
            store.wal_len()
        );
        return Ok(());
    }
    let (store, report) = open_durable(dir, opts)?;
    print_report(&report);
    println!(
        "store {dir}: {} images, {} regions, wal {} bytes",
        store.len(),
        store.db().num_regions(),
        store.wal_len()
    );
    Ok(())
}

/// Parses `<dir> [--shard i]`, also honoring a `--shard` given before the
/// subcommand.
fn dir_and_shard(rest: &[String], opts: &Options, usage: &str) -> Result<(String, Option<usize>), String> {
    match rest {
        [dir] => Ok((dir.clone(), opts.shard)),
        [dir, flag, value] if flag == "--shard" => {
            let shard =
                value.parse().map_err(|_| format!("--shard: cannot parse {value:?}"))?;
            Ok((dir.clone(), Some(shard)))
        }
        _ => Err(usage.into()),
    }
}

/// Usage-level guard for `--shard <i>`: refused with the valid range spelled
/// out, before the store is asked to do anything with the index.
fn check_shard_in_range(shard: usize, count: usize, usage: &str) -> Result<(), String> {
    if shard >= count {
        return Err(format!(
            "--shard {shard} is out of range: the store has {count} shard(s), \
             so valid indices are 0..={}\n{usage}",
            count - 1
        ));
    }
    Ok(())
}

fn cmd_rebalance(opts: &Options, rest: &[String]) -> Result<(), String> {
    let usage = "usage: walrus rebalance <dir> --shards <M>";
    // Accept `--shards` before or after the directory.
    let (dir, target) = match rest {
        [dir] => (dir.clone(), opts.shards),
        [dir, flag, value] if flag == "--shards" => {
            let m = value.parse().map_err(|_| format!("--shards: cannot parse {value:?}"))?;
            (dir.clone(), Some(m))
        }
        _ => return Err(usage.into()),
    };
    let Some(target) = target else {
        return Err(format!("rebalance needs a target shard count\n{usage}"));
    };
    let dir = dir.as_str();
    if !is_sharded_store(std::path::Path::new(dir)) {
        return Err(format!(
            "{dir} is not a sharded store (only stores created with `walrus --shards n open` \
             can change shard count)"
        ));
    }
    // Open with shards=0: adopt whatever layout the manifest records (an
    // interrupted migration resumes here, before the explicit rebalance).
    let (store, recoveries) = open_sharded(dir, opts, 0)?;
    warn_if_degraded(dir, &recoveries);
    let report =
        store.rebalance(target).map_err(|e| format!("rebalance of {dir} failed: {e}"))?;
    println!(
        "rebalanced {dir}: {} -> {} shard(s) at epoch {}, {} image slot(s) migrated",
        report.from_shards, report.to_shards, report.epoch, report.images
    );
    Ok(())
}

fn cmd_scrub(opts: &Options, rest: &[String]) -> Result<(), String> {
    let usage = "usage: walrus scrub <dir> [--shard <i>]";
    let (dir, shard) = dir_and_shard(rest, opts, usage)?;
    let dir = dir.as_str();
    if !is_store_dir(dir) {
        return Err(format!("{dir} is not a store directory"));
    }
    let io = walrus_core::DiskIo;
    let print_verdict = |label: &str, scrub: &walrus_core::DirScrub| {
        let verdict = if scrub.clean() { "clean" } else { "CORRUPT" };
        print!(
            "{label}: {verdict} (snapshot {}, {} image(s); wal {}, {} record(s))",
            if scrub.snapshot_ok { "ok" } else { "damaged" },
            scrub.snapshot_images,
            if scrub.wal_ok { "ok" } else { "damaged" },
            scrub.wal_records,
        );
        match &scrub.error {
            Some(error) => println!(" — {error}"),
            None => println!(),
        }
    };
    if is_sharded_store(std::path::Path::new(dir)) {
        let verdicts = scrub_store(&io, std::path::Path::new(dir), shard)
            .map_err(|e| format!("cannot scrub {dir}: {e}"))?;
        for v in &verdicts {
            print_verdict(&format!("shard {:03}", v.shard), &v.scrub);
        }
        let dirty: Vec<String> = verdicts
            .iter()
            .filter(|v| !v.scrub.clean())
            .map(|v| v.shard.to_string())
            .collect();
        if !dirty.is_empty() {
            return Err(format!(
                "store {dir} failed scrub: shard(s) {} are damaged \
                 (run `walrus recover {dir} --shard <i>` to repair)",
                dirty.join(", ")
            ));
        }
        println!("store {dir} passed scrub: {} shard(s) verified", verdicts.len());
        return Ok(());
    }
    if shard.is_some() {
        return Err(format!("{dir} is not a sharded store; --shard does not apply"));
    }
    let scrub = walrus_core::scrub_dir(&io, std::path::Path::new(dir));
    print_verdict(dir, &scrub);
    if !scrub.clean() {
        return Err(format!(
            "store {dir} failed scrub (run `walrus recover {dir}` to repair)"
        ));
    }
    println!("store {dir} passed scrub");
    Ok(())
}

fn cmd_recover(opts: &Options, rest: &[String]) -> Result<(), String> {
    let usage = "usage: walrus recover <dir> [--shard <i>]";
    let (dir, shard) = dir_and_shard(rest, opts, usage)?;
    let dir = dir.as_str();
    if !is_store_dir(dir) {
        return Err(format!("{dir} is not a store directory"));
    }
    if is_sharded_store(std::path::Path::new(dir)) {
        // Repair adopts whatever layout the manifest records (shards = 0):
        // a store mid-repair must open even when `--shards`/`WALRUS_SHARDS`
        // describe the layout it had before a rebalance.
        let (store, recoveries) = open_sharded(dir, opts, 0)?;
        print_shard_recoveries(&recoveries);
        if let Some(shard) = shard {
            check_shard_in_range(shard, store.shard_count(), usage)?;
            // Explicit repair: truncate the shard's WAL to its longest clean
            // prefix (accepting the loss of whatever followed the damage)
            // and swap the shard back in.
            let repair = store
                .recover_shard(shard)
                .map_err(|e| format!("cannot repair shard {shard}: {e}"))?;
            println!(
                "shard {:03}: repaired, {} wal record(s) kept, {} damaged byte(s) truncated",
                repair.shard, repair.records_kept, repair.truncated_bytes
            );
        }
        let quarantined = store.quarantined_shards();
        if quarantined.is_empty() {
            println!(
                "sharded store {dir} is consistent: {} shard(s), {} images, \
                 {} wal record(s) pending checkpoint",
                store.shard_count(),
                store.len(),
                store.records_since_checkpoint()
            );
            return Ok(());
        }
        let shards: Vec<String> = quarantined.iter().map(|s| s.to_string()).collect();
        return Err(format!(
            "store {dir} is degraded: shard(s) {} quarantined; \
             run `walrus recover {dir} --shard <i>` to repair one",
            shards.join(", ")
        ));
    } else if shard.is_some() {
        return Err(format!("{dir} is not a sharded store; --shard does not apply"));
    }
    let (store, report) = open_durable(dir, opts)?;
    print_report(&report);
    println!(
        "store {dir} is consistent: {} images, {} regions, {} wal record(s) pending checkpoint",
        store.len(),
        store.db().num_regions(),
        store.records_since_checkpoint()
    );
    Ok(())
}

fn cmd_compact(opts: &Options, rest: &[String]) -> Result<(), String> {
    let usage = "usage: walrus compact <dir> [--shard <i>]";
    let (dir, shard) = dir_and_shard(rest, opts, usage)?;
    let dir = dir.as_str();
    if !is_store_dir(dir) {
        return Err(format!("{dir} is not a store directory"));
    }
    if is_sharded_store(std::path::Path::new(dir)) {
        // Like `recover`: compaction adopts the manifest's layout.
        let (store, recoveries) = open_sharded(dir, opts, 0)?;
        warn_if_degraded(dir, &recoveries);
        let before = store.wal_len();
        let reports = match shard {
            Some(shard) => {
                check_shard_in_range(shard, store.shard_count(), usage)?;
                vec![store
                    .checkpoint_shard(shard)
                    .map_err(|e| format!("checkpoint of shard {shard} failed: {e}"))?]
            }
            None => store.checkpoint().map_err(|e| format!("checkpoint failed: {e}"))?,
        };
        for r in &reports {
            println!(
                "shard {:03}: checkpointed at lsn {} in {} us",
                r.shard,
                r.last_lsn,
                r.duration.as_micros()
            );
        }
        println!(
            "compacted {dir}: wal {} -> {} bytes, {} shard snapshot(s) cover {} images",
            before,
            store.wal_len(),
            reports.len(),
            store.len()
        );
        return Ok(());
    } else if shard.is_some() {
        return Err(format!("{dir} is not a sharded store; --shard does not apply"));
    }
    let (mut store, report) = open_durable(dir, opts)?;
    print_report(&report);
    let before = store.wal_len();
    store.checkpoint().map_err(|e| format!("checkpoint failed: {e}"))?;
    println!(
        "compacted {dir}: wal {} -> {} bytes, snapshot covers {} images",
        before,
        store.wal_len(),
        store.len()
    );
    Ok(())
}

fn cmd_serve(opts: &Options, rest: &[String]) -> Result<(), String> {
    let [dir] = rest else {
        return Err("usage: walrus [--addr host:port] [--threads n] [--timeout-ms n] \
                    [--reactor] [--cache-capacity n] serve <store-dir>"
            .into());
    };
    let defaults = walrus_server::ServerConfig::default();
    let config = walrus_server::ServerConfig {
        addr: opts.addr.clone(),
        threads: opts.threads,
        default_timeout: opts.timeout_ms.map(Duration::from_millis),
        reactor: opts.reactor || defaults.reactor,
        cache_capacity: opts.cache_capacity.unwrap_or(defaults.cache_capacity),
        ..defaults
    };
    let backend = if config.reactor {
        "event-driven reactor (epoll; falls back to threads if unsupported)"
    } else {
        "thread-per-connection"
    };
    walrus_server::signals::install();
    let shards = resolved_shards(opts)?;
    let handle = if wants_sharded(dir, shards) {
        let (store, recoveries) = open_sharded(dir, opts, shards)?;
        print_shard_recoveries(&recoveries);
        warn_if_degraded(dir, &recoveries);
        walrus_server::Server::start(config, store)
    } else {
        let (store, report) = open_durable(dir, opts)?;
        print_report(&report);
        walrus_server::Server::start(config, walrus_core::SharedDurableDatabase::new(store))
    }
    .map_err(|e| format!("cannot start server: {e}"))?;
    println!("serving {dir} on http://{} ({backend})", handle.addr());
    println!(
        "endpoints: /healthz /metrics /ingest /query /image/{{id}} /admin/checkpoint \
         /admin/rebalance"
    );
    println!("press ctrl-c (or send SIGTERM) for graceful shutdown");
    while !walrus_server::signals::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("shutdown requested: draining in-flight requests...");
    handle.shutdown().map_err(|e| format!("shutdown failed: {e}"))?;
    println!("drained and checkpointed; store {dir} is clean");
    Ok(())
}

/// Self-contained HTTP round-trip benchmark: starts a server on an
/// ephemeral port over a temp store, ingests a synthetic dataset through
/// `POST /ingest`, fires concurrent queries, and records client-observed
/// latency percentiles in `BENCH_server.json`.
fn cmd_bench_http(opts: &Options, rest: &[String]) -> Result<(), String> {
    use walrus_bench::report::BenchReport;
    use walrus_imagery::synth::dataset::timing_image;
    use walrus_server::{Client, Server, ServerConfig};

    if !rest.is_empty() {
        return Err("usage: walrus [--threads n] bench-http".into());
    }
    const IMAGES: usize = 8;
    const CLIENTS: usize = 4;
    const ROUNDS: usize = 5;

    let base = std::env::temp_dir().join(format!("walrus_bench_http_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).map_err(|e| e.to_string())?;
    let (store, _) = open_durable(base.to_str().ok_or("temp path is not UTF-8")?, opts)?;
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        // Thread-per-connection: cover every concurrent client unless the
        // user pinned a count.
        threads: if opts.threads > 0 { opts.threads } else { CLIENTS + 2 },
        ..ServerConfig::default()
    };
    let handle = Server::start(config, walrus_core::SharedDurableDatabase::new(store))
        .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = handle.addr();
    println!("bench-http: {IMAGES} images, {CLIENTS} query clients x {ROUNDS} rounds on {addr}");

    // Synthetic PPM bodies.
    let mut bodies = Vec::with_capacity(IMAGES);
    for seed in 0..IMAGES {
        let img = timing_image(96, 64, seed as u64).map_err(|e| e.to_string())?;
        let mut buf = Vec::new();
        ppm::write_ppm(&img, &mut buf).map_err(|e| e.to_string())?;
        bodies.push(buf);
    }

    // Sequential ingest, one request per image, client-observed latency.
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let mut ingest_ms = Vec::with_capacity(IMAGES);
    let ingest_started = std::time::Instant::now();
    for (i, body) in bodies.iter().enumerate() {
        let started = std::time::Instant::now();
        let resp = client
            .request("POST", &format!("/ingest?name=bench-{i}"), body)
            .map_err(|e| e.to_string())?;
        if resp.status != 200 {
            return Err(format!("ingest {i} answered {}: {}", resp.status, resp.text()));
        }
        ingest_ms.push(started.elapsed().as_secs_f64() * 1e3);
    }
    let ingest_wall = ingest_started.elapsed().as_secs_f64();

    // Concurrent queries from independent connections.
    let bodies = std::sync::Arc::new(bodies);
    let mut workers = Vec::new();
    for c in 0..CLIENTS {
        let bodies = std::sync::Arc::clone(&bodies);
        workers.push(std::thread::spawn(move || -> Result<Vec<f64>, String> {
            let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
            let mut latencies = Vec::with_capacity(ROUNDS);
            for round in 0..ROUNDS {
                let body = &bodies[(c + round) % bodies.len()];
                let started = std::time::Instant::now();
                let resp =
                    client.request("POST", "/query?k=5", body).map_err(|e| e.to_string())?;
                if resp.status != 200 {
                    return Err(format!("query answered {}: {}", resp.status, resp.text()));
                }
                latencies.push(started.elapsed().as_secs_f64() * 1e3);
            }
            Ok(latencies)
        }));
    }
    let mut query_ms = Vec::new();
    for worker in workers {
        query_ms.extend(worker.join().map_err(|_| "query client panicked")??);
    }
    handle.shutdown().map_err(|e| format!("shutdown failed: {e}"))?;
    let _ = std::fs::remove_dir_all(&base);

    let stats = |ms: &mut Vec<f64>| -> (f64, f64, f64) {
        ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = |q: f64| ms[((q * ms.len() as f64).ceil() as usize).clamp(1, ms.len()) - 1];
        (rank(0.50), rank(0.95), rank(0.99))
    };
    let (ing_p50, ing_p95, ing_p99) = stats(&mut ingest_ms);
    let (q_p50, q_p95, q_p99) = stats(&mut query_ms);
    println!(
        "ingest: p50 {ing_p50:.2} ms, p95 {ing_p95:.2} ms, p99 {ing_p99:.2} ms \
         ({:.1} images/sec)",
        IMAGES as f64 / ingest_wall
    );
    println!("query:  p50 {q_p50:.2} ms, p95 {q_p95:.2} ms, p99 {q_p99:.2} ms");

    let out_path = BenchReport::new("http_server")
        .field("images", IMAGES.to_string())
        .field("query_clients", CLIENTS.to_string())
        .field("query_samples", query_ms.len().to_string())
        .field(
            "ingest",
            format!(
                "{{ \"p50_ms\": {ing_p50:.3}, \"p95_ms\": {ing_p95:.3}, \"p99_ms\": {ing_p99:.3}, \"images_per_sec\": {:.2} }}",
                IMAGES as f64 / ingest_wall
            ),
        )
        .field(
            "query",
            format!(
                "{{ \"p50_ms\": {q_p50:.3}, \"p95_ms\": {q_p95:.3}, \"p99_ms\": {q_p99:.3} }}"
            ),
        )
        .write("BENCH_server.json")
        .map_err(|e| format!("cannot write benchmark output: {e}"))?;
    println!("wrote {out_path}");

    // --- Hot-query cache benchmark -> BENCH_cache.json -------------------
    // The same request sequence runs against a cache-enabled and a
    // cache-disabled server over identical stores; since both mint request
    // ids from 0, every response must be byte-identical — the cache may
    // only change latency, never bytes.
    const HOT_ROUNDS: usize = 12;
    // (label, per-round latencies in ms, per-round response bodies).
    type CacheRun = (&'static str, Vec<f64>, Vec<Vec<u8>>);
    let mut runs: Vec<CacheRun> = Vec::new();
    for (label, capacity) in
        [("cache_on", walrus_server::QueryCache::DEFAULT_CAPACITY), ("cache_off", 0)]
    {
        let dir =
            std::env::temp_dir().join(format!("walrus_bench_{label}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        let (store, _) = open_durable(dir.to_str().ok_or("temp path is not UTF-8")?, opts)?;
        let defaults = ServerConfig::default();
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: if opts.threads > 0 { opts.threads } else { 2 },
            reactor: opts.reactor || defaults.reactor,
            cache_capacity: capacity,
            ..defaults
        };
        let handle = Server::start(config, walrus_core::SharedDurableDatabase::new(store))
            .map_err(|e| format!("cannot start {label} server: {e}"))?;
        let mut client = Client::connect(handle.addr()).map_err(|e| e.to_string())?;
        for (i, body) in bodies.iter().enumerate() {
            let resp = client
                .request("POST", &format!("/ingest?name=bench-{i}"), body)
                .map_err(|e| e.to_string())?;
            if resp.status != 200 {
                return Err(format!("{label} ingest {i} answered {}", resp.status));
            }
        }
        let hot = &bodies[0];
        let mut lat = Vec::with_capacity(HOT_ROUNDS);
        let mut answers = Vec::with_capacity(HOT_ROUNDS);
        for _ in 0..HOT_ROUNDS {
            let started = std::time::Instant::now();
            let resp = client.request("POST", "/query?k=5", hot).map_err(|e| e.to_string())?;
            if resp.status != 200 {
                return Err(format!("{label} hot query answered {}", resp.status));
            }
            lat.push(started.elapsed().as_secs_f64() * 1e3);
            answers.push(resp.body);
        }
        handle.shutdown().map_err(|e| format!("{label} shutdown failed: {e}"))?;
        let _ = std::fs::remove_dir_all(&dir);
        runs.push((label, lat, answers));
    }
    let (_, on_ms, on_answers) = &runs[0];
    let (_, off_ms, off_answers) = &runs[1];
    for (round, (a, b)) in on_answers.iter().zip(off_answers).enumerate() {
        if a != b {
            return Err(format!(
                "cache served different bytes than the uncached path on round {round}"
            ));
        }
    }
    let p50 = |ms: &[f64]| {
        let mut v = ms.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        v[(v.len() - 1) / 2]
    };
    let (on_p50, off_p50) = (p50(on_ms), p50(off_ms));
    println!(
        "hot query ({HOT_ROUNDS} rounds): p50 {on_p50:.3} ms cached vs {off_p50:.3} ms uncached \
         (responses byte-identical)"
    );
    let cache_path = BenchReport::new("query_cache")
        .field("hot_rounds", HOT_ROUNDS.to_string())
        .field("cache_on", format!("{{ \"p50_ms\": {on_p50:.4} }}"))
        .field("cache_off", format!("{{ \"p50_ms\": {off_p50:.4} }}"))
        .field("byte_identical", "true".to_string())
        .write("BENCH_cache.json")
        .map_err(|e| format!("cannot write benchmark output: {e}"))?;
    println!("wrote {cache_path}");
    Ok(())
}

fn print_ranking<'a>(matches: impl Iterator<Item = &'a walrus_core::RankedImage>) {
    println!("{:>4} {:>5} {:>10} {:>7}  name", "rank", "id", "similarity", "pairs");
    let mut any = false;
    for (rank, m) in matches.enumerate() {
        any = true;
        println!("{:>4} {:>5} {:>10.4} {:>7}  {}", rank + 1, m.image_id, m.similarity, m.matched_pairs, m.name);
    }
    if !any {
        println!("  (no matches)");
    }
}

fn print_usage() {
    println!(
        "walrus — region-based image similarity search (WALRUS, SIGMOD 1999)\n\
         \n\
         usage: walrus [options] <command> <args>\n\
         \n\
         commands:\n\
           index  <db> <image.ppm>...        index PPM/PGM images\n\
           query  <db> <image.ppm>           rank images by similarity\n\
           explain <db> <image.ppm>          query + per-stage trace and budget use\n\
           scene  <db> <image.ppm> x y w h   query by a marked sub-scene\n\
           remove <db> <id>                  remove an image\n\
           info   <db>                       show database statistics\n\
           demo   <db>                       populate with synthetic images\n\
           open   <dir>                      create/open a crash-safe store\n\
                                             (--shards n creates a sharded store)\n\
           recover <dir> [--shard <i>]       recover a store, report repairs;\n\
                                             --shard repairs one quarantined shard\n\
           compact <dir> [--shard <i>]       fold write-ahead log(s) into snapshot(s)\n\
           rebalance <dir> --shards <M>      migrate a sharded store to M shards\n\
                                             (crash-safe; resumes on reopen if interrupted)\n\
           scrub  <dir> [--shard <i>]        verify snapshot + WAL integrity read-only;\n\
                                             exits nonzero if any shard is damaged\n\
           serve  <dir>                      serve a store over HTTP until SIGTERM/ctrl-c\n\
                                             (--reactor: event-driven epoll backend)\n\
           bench-http                        HTTP round-trip benchmark -> BENCH_server.json\n\
                                             + hot-query cache bench -> BENCH_cache.json\n\
         \n\
         <db> is a snapshot file or a durable store directory (see `open`).\n\
         \n\
         options:\n\
           -k <n>                 results to print (default 10)\n\
           --eps <f>              querying epsilon override\n\
           --window <min> <max>   window size range (default 8 32)\n\
           --space <name>         rgb|ycc|yiq|hsv|gray (default ycc)\n\
           --threads <n>          worker threads (0 = auto via WALRUS_THREADS/CPUs)\n\
           --timeout-ms <n>       request deadline (query: best-so-far partial;\n\
                                  index: all-or-nothing abort)\n\
           --max-pixels <n>       reject larger images before decoding\n\
           --addr <host:port>     bind address for serve (default 127.0.0.1:8167)\n\
           --shards <n>           shard count when creating a store (or WALRUS_SHARDS;\n\
                                  fixed at creation; omit for the single-directory layout)\n\
           --shard <i>            target one shard in recover/compact/scrub\n\
           --reactor              serve via the epoll reactor (or WALRUS_REACTOR=1)\n\
           --cache-capacity <n>   query-result cache entries (0 disables; default 256)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn load_db(path: &str) -> Result<ImageDatabase, String> {
        persist::load_from_file(path).map_err(|e| format!("cannot load {path}: {e}"))
    }

    #[test]
    fn options_defaults() {
        let args = s(&["query", "db", "img"]);
        let (opts, rest) = parse_options(&args).unwrap();
        assert_eq!(opts.k, 10);
        assert_eq!(opts.space, ColorSpace::Ycc);
        assert_eq!(rest.len(), 3);
    }

    #[test]
    fn options_parse_all_flags() {
        let args = s(&["-k", "5", "--eps", "0.07", "--window", "16", "64", "--space", "rgb", "query"]);
        let (opts, rest) = parse_options(&args).unwrap();
        assert_eq!(opts.k, 5);
        assert_eq!(opts.eps, Some(0.07));
        assert_eq!((opts.omega_min, opts.omega_max), (16, 64));
        assert_eq!(opts.space, ColorSpace::Rgb);
        assert_eq!(rest, &["query".to_string()][..]);
    }

    #[test]
    fn options_parse_serve_flags() {
        let args = s(&["--reactor", "--cache-capacity", "64", "serve", "db"]);
        let (opts, rest) = parse_options(&args).unwrap();
        assert!(opts.reactor);
        assert_eq!(opts.cache_capacity, Some(64));
        assert_eq!(rest.len(), 2);
        // 0 disables the cache and must parse.
        let (opts, _) = parse_options(&s(&["--cache-capacity", "0", "serve", "db"])).unwrap();
        assert_eq!(opts.cache_capacity, Some(0));
        assert!(!opts.reactor);
    }

    #[test]
    fn options_reject_garbage() {
        assert!(parse_options(&s(&["-k"])).is_err());
        assert!(parse_options(&s(&["-k", "many"])).is_err());
        assert!(parse_options(&s(&["--space", "cmyk"])).is_err());
        assert!(parse_options(&s(&["--window", "8"])).is_err());
    }

    #[test]
    fn options_parse_lifecycle_flags() {
        let args = s(&["--timeout-ms", "250", "--max-pixels", "1000000", "query"]);
        let (opts, rest) = parse_options(&args).unwrap();
        assert_eq!(opts.timeout_ms, Some(250));
        assert_eq!(opts.max_pixels, Some(1_000_000));
        assert!(opts.guard().is_armed());
        assert_eq!(opts.pixel_budget(), 1_000_000);
        assert_eq!(rest, &["query".to_string()][..]);
        assert!(parse_options(&s(&["--max-pixels", "0"])).is_err());
        assert!(parse_options(&s(&["--timeout-ms", "soon"])).is_err());
        assert!(!Options::default().guard().is_armed());
    }

    #[test]
    fn oversized_image_rejected_before_decode() {
        let dir = std::env::temp_dir().join("walrus_cli_hostile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let evil = dir.join("evil.ppm");
        // Header claims ~10^18 pixels; the raster is 2 bytes. Must fail on
        // the declared size, long before any allocation.
        std::fs::write(&evil, b"P6\n999999999 999999999\n255\nxx").unwrap();
        let db = dir.join("db.walrus");
        let _ = std::fs::remove_file(&db);
        let err = run(&s(&["index", db.to_str().unwrap(), evil.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("pixel budget"), "unexpected error: {err}");
        assert!(!db.exists(), "failed index must not create a database");
        std::fs::remove_file(&evil).ok();
    }

    #[test]
    fn run_rejects_unknown_command() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&s(&[])).is_err());
    }

    #[test]
    fn serve_and_bench_http_validate_args() {
        assert!(run(&s(&["serve"])).is_err());
        assert!(run(&s(&["serve", "a", "b"])).is_err());
        assert!(run(&s(&["bench-http", "unexpected"])).is_err());
        let (opts, _) = parse_options(&s(&["--addr", "0.0.0.0:9999", "serve"])).unwrap();
        assert_eq!(opts.addr, "0.0.0.0:9999");
        assert!(parse_options(&s(&["--addr"])).is_err());
    }

    #[test]
    fn end_to_end_demo_query_remove() {
        let dir = std::env::temp_dir().join("walrus_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let db_path = dir.join("demo.walrus");
        let db_str = db_path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&db_path);

        // demo populates and saves.
        run(&s(&["demo", &db_str])).unwrap();
        let db = load_db(&db_str).unwrap();
        assert_eq!(db.len(), 24);

        // Write a query image, query it.
        let query_path = dir.join("q.ppm");
        let synthetic = walrus_imagery::synth::dataset::timing_image(128, 96, 1).unwrap();
        ppm::save_ppm(&synthetic, &query_path).unwrap();
        run(&s(&["-k", "3", "query", &db_str, query_path.to_str().unwrap()])).unwrap();

        // info + remove round trip.
        run(&s(&["info", &db_str])).unwrap();
        run(&s(&["remove", &db_str, "0"])).unwrap();
        let db = load_db(&db_str).unwrap();
        assert_eq!(db.len(), 23);

        std::fs::remove_file(&db_path).ok();
        std::fs::remove_file(&query_path).ok();
    }

    #[test]
    fn index_and_query_real_files() {
        let dir = std::env::temp_dir().join("walrus_cli_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let db_path = dir.join("idx.walrus");
        let _ = std::fs::remove_file(&db_path);
        let db_str = db_path.to_str().unwrap().to_string();

        // Two PPM files from the synthetic generator.
        let a = walrus_imagery::synth::dataset::timing_image(96, 64, 2).unwrap();
        let b = walrus_imagery::synth::dataset::timing_image(96, 64, 3).unwrap();
        let pa = dir.join("a.ppm");
        let pb = dir.join("b.ppm");
        ppm::save_ppm(&a, &pa).unwrap();
        ppm::save_ppm(&b, &pb).unwrap();

        run(&s(&["index", &db_str, pa.to_str().unwrap(), pb.to_str().unwrap()])).unwrap();
        let db = load_db(&db_str).unwrap();
        assert_eq!(db.len(), 2);

        // Query with image a: it must be the top result.
        run(&s(&["query", &db_str, pa.to_str().unwrap()])).unwrap();

        // explain runs the same query with tracing; with and without a
        // deadline, and rejects bad arity.
        run(&s(&["explain", &db_str, pa.to_str().unwrap()])).unwrap();
        run(&s(&["--timeout-ms", "5000", "explain", &db_str, pa.to_str().unwrap()])).unwrap();
        assert!(run(&s(&["explain", &db_str])).is_err());

        // An already-expired deadline degrades to a partial (empty) ranking
        // instead of an error or a hang.
        run(&s(&["--timeout-ms", "0", "query", &db_str, pa.to_str().unwrap()])).unwrap();
        let loaded_a = load_image(pa.to_str().unwrap(), &Options::default()).unwrap();
        let top = db.top_k(&loaded_a, 1).unwrap();
        assert!(top[0].name.ends_with("a.ppm"));

        for p in [&db_path, &pa, &pb] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn durable_store_end_to_end() {
        let base = std::env::temp_dir().join("walrus_cli_durable_test");
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let store = base.join("store");
        let store_str = store.to_str().unwrap().to_string();

        // open creates the store directory.
        run(&s(&["open", &store_str])).unwrap();
        assert!(store.join("snapshot.walrus").exists());

        // index into the durable store (auto-detected by directory).
        let img = walrus_imagery::synth::dataset::timing_image(96, 64, 5).unwrap();
        let ppm_path = base.join("i.ppm");
        ppm::save_ppm(&img, &ppm_path).unwrap();
        run(&s(&["index", &store_str, ppm_path.to_str().unwrap()])).unwrap();
        assert!(store.join("wal.log").exists());

        // query, info, recover and compact all work against the store.
        run(&s(&["query", &store_str, ppm_path.to_str().unwrap()])).unwrap();
        run(&s(&["info", &store_str])).unwrap();
        run(&s(&["recover", &store_str])).unwrap();
        run(&s(&["compact", &store_str])).unwrap();

        // After compaction the image lives in the snapshot.
        let db = load_db(store.join("snapshot.walrus").to_str().unwrap()).unwrap();
        assert_eq!(db.len(), 1);

        // remove commits through the WAL.
        run(&s(&["remove", &store_str, "0"])).unwrap();
        run(&s(&["recover", &store_str])).unwrap();

        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn sharded_store_end_to_end() {
        let base = std::env::temp_dir().join("walrus_cli_sharded_test");
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let store = base.join("store");
        let store_str = store.to_str().unwrap().to_string();

        // --shards creates the sharded layout: manifest + per-shard dirs.
        run(&s(&["--shards", "3", "open", &store_str])).unwrap();
        assert!(store.join("MANIFEST").exists());
        assert!(store.join("shard-000").join("snapshot.walrus").exists());
        assert!(!store.join("snapshot.walrus").exists(), "no top-level monolithic files");

        // index/query/info/remove auto-detect the sharded store.
        let img = walrus_imagery::synth::dataset::timing_image(96, 64, 5).unwrap();
        let ppm_path = base.join("i.ppm");
        ppm::save_ppm(&img, &ppm_path).unwrap();
        run(&s(&["index", &store_str, ppm_path.to_str().unwrap()])).unwrap();
        run(&s(&["query", &store_str, ppm_path.to_str().unwrap()])).unwrap();
        run(&s(&["info", &store_str])).unwrap();

        // scene queries are clearly refused, not silently wrong.
        let err =
            run(&s(&["scene", &store_str, ppm_path.to_str().unwrap(), "0", "0", "8", "8"]))
                .unwrap_err();
        assert!(err.contains("sharded"), "unexpected error: {err}");

        // Per-shard and rolling compaction; recover confirms consistency.
        run(&s(&["compact", &store_str, "--shard", "1"])).unwrap();
        run(&s(&["compact", &store_str])).unwrap();
        run(&s(&["recover", &store_str])).unwrap();
        // A mismatched --shards on an existing store is refused.
        assert!(run(&s(&["--shards", "2", "open", &store_str])).is_err());
        // --shard out of range is a usage error that names the valid range.
        let err = run(&s(&["recover", &store_str, "--shard", "9"])).unwrap_err();
        assert!(err.contains("0..=2"), "unexpected error: {err}");
        let err = run(&s(&["compact", &store_str, "--shard", "9"])).unwrap_err();
        assert!(err.contains("0..=2"), "unexpected error: {err}");

        run(&s(&["remove", &store_str, "0"])).unwrap();
        run(&s(&["recover", &store_str])).unwrap();

        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn recover_and_compact_reject_plain_files() {
        assert!(run(&s(&["recover", "/nonexistent/not-a-dir"])).is_err());
        assert!(run(&s(&["compact", "/nonexistent/not-a-dir"])).is_err());
        assert!(run(&s(&["scrub", "/nonexistent/not-a-dir"])).is_err());
        assert!(run(&s(&["rebalance", "/nonexistent/not-a-dir", "--shards", "2"])).is_err());
    }

    #[test]
    fn rebalance_and_scrub_end_to_end() {
        let base = std::env::temp_dir().join("walrus_cli_rebalance_test");
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        let store = base.join("store");
        let store_str = store.to_str().unwrap().to_string();

        run(&s(&["--shards", "4", "open", &store_str])).unwrap();
        let img = walrus_imagery::synth::dataset::timing_image(96, 64, 5).unwrap();
        let ppm_path = base.join("i.ppm");
        ppm::save_ppm(&img, &ppm_path).unwrap();
        run(&s(&["index", &store_str, ppm_path.to_str().unwrap()])).unwrap();

        // A clean store passes scrub, whole and per shard; out-of-range
        // shard indices name the valid range.
        run(&s(&["scrub", &store_str])).unwrap();
        run(&s(&["scrub", &store_str, "--shard", "0"])).unwrap();
        let err = run(&s(&["scrub", &store_str, "--shard", "9"])).unwrap_err();
        assert!(err.contains("0..=3"), "unexpected error: {err}");

        // Migrate 4 -> 2: the epoch-1 layout serves the same data and the
        // old directories are collected.
        run(&s(&["rebalance", &store_str, "--shards", "2"])).unwrap();
        assert!(store.join("e1-shard-000").join("snapshot.walrus").exists());
        assert!(!store.join("shard-000").join("snapshot.walrus").exists());
        run(&s(&["query", &store_str, ppm_path.to_str().unwrap()])).unwrap();
        run(&s(&["info", &store_str])).unwrap();
        run(&s(&["scrub", &store_str])).unwrap();

        // Argument errors: a target is required, monolithic stores cannot
        // rebalance, and --shard does not apply to them.
        assert!(run(&s(&["rebalance", &store_str])).is_err());
        let mono = base.join("mono");
        let mono_str = mono.to_str().unwrap().to_string();
        run(&s(&["open", &mono_str])).unwrap();
        assert!(run(&s(&["rebalance", &mono_str, "--shards", "2"])).is_err());
        assert!(run(&s(&["scrub", &mono_str, "--shard", "0"])).is_err());
        run(&s(&["scrub", &mono_str])).unwrap();

        // Scrub flags a flipped snapshot byte and exits nonzero; restoring
        // the byte restores the clean verdict.
        let snap = store.join("e1-shard-001").join("snapshot.walrus");
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&snap, &bytes).unwrap();
        let err = run(&s(&["scrub", &store_str])).unwrap_err();
        assert!(err.contains("shard(s) 1"), "unexpected error: {err}");
        bytes[mid] ^= 0xff;
        std::fs::write(&snap, &bytes).unwrap();
        run(&s(&["scrub", &store_str])).unwrap();

        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn missing_database_is_a_clean_error() {
        assert!(run(&s(&["query", "/nonexistent/db.walrus", "/nonexistent/q.ppm"])).is_err());
        assert!(run(&s(&["info", "/nonexistent/db.walrus"])).is_err());
    }
}
