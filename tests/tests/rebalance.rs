//! Online-rebalancing integration suite: the crash-safety contract of
//! `walrus rebalance` end to end.
//!
//! 1. **Fault sweeps** — `Error` / `ShortWrite` injected at *every* I/O
//!    operation index of the whole migration (manifest writes, target shard
//!    builds, GC), under every [`CrashMode`], for (N,M) ∈ {1→4, 4→2, 4→8}:
//!    the store always reopens (resuming the migration or rolling it back),
//!    never quarantines a shard, lands on exactly the source or the target
//!    layout, answers queries bit-identical to a never-migrated oracle,
//!    accepts writes, and passes a full scrub.
//! 2. **Mid-migration serving** — a gated I/O wrapper freezes the migration
//!    inside the first target-shard build: queries keep answering from the
//!    source layout bit-identically, ingest and checkpoints shed with the
//!    typed [`WalrusError::Rebalancing`], and progress is visible through
//!    `rebalance_status`. Releasing the gate commits; the new layout serves
//!    the same answers and survives a reopen.
//! 3. **Mixed snapshot versions** — a store whose shards hold a mix of v2
//!    and v3 snapshot envelopes reopens bit-identically, rebalances to a
//!    uniform target layout, and scrubs clean.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use walrus_core::persist;
use walrus_core::recovery::SNAPSHOT_FILE;
use walrus_core::sharded::{read_manifest, shard_dir_name_at};
use walrus_core::storage::{Fault, FaultIo, FaultKind, ALL_CRASH_MODES};
use walrus_core::{
    extract_regions, scrub_store, QueryOutcome, Region, Result, ShardedStore, StorageIo,
    WalrusError, WalrusParams,
};
use walrus_imagery::synth::scene::{Scene, SceneObject};
use walrus_imagery::synth::shapes::Shape;
use walrus_imagery::synth::texture::{Rgb, Texture};
use walrus_imagery::Image;

fn sweep_params() -> WalrusParams {
    WalrusParams {
        sliding: walrus_wavelet::SlidingParams { s: 2, omega_min: 8, omega_max: 16, stride: 4 },
        ..WalrusParams::paper_defaults()
    }
}

fn scene(hue: f32) -> Image {
    Scene::new(Texture::Solid(Rgb(hue, 0.4, 0.3)))
        .with(SceneObject::new(
            Shape::Ellipse { rx: 0.5, ry: 0.5 },
            Texture::Solid(Rgb(0.9, 0.2, 0.2)),
            (0.5, 0.5),
            0.4,
        ))
        .render(32, 32)
        .unwrap()
}

/// Pre-extracted regions for the workload images, so the hundreds of sweep
/// iterations skip the deterministic wavelet work.
struct Fixtures {
    regions: Vec<(String, Vec<Region>)>,
}

impl Fixtures {
    fn new() -> Self {
        let p = sweep_params();
        let regions = (0..6)
            .map(|i| {
                let name = format!("img{i}");
                let r = extract_regions(&scene(0.1 + 0.11 * i as f32), &p).unwrap();
                (name, r)
            })
            .collect();
        Self { regions }
    }

    fn insert(&self, store: &ShardedStore, i: usize) -> Result<()> {
        let (name, regions) = &self.regions[i];
        store.insert_regions(name, 32, 32, regions.clone())?;
        Ok(())
    }
}

/// The pre-migration workload: six inserts spread over the shards by the id
/// hash, plus one remove so the migration must carry a tombstone (sparse
/// ids survive the re-hash).
fn apply_workload(fx: &Fixtures, store: &ShardedStore) {
    for i in 0..6 {
        fx.insert(store, i).unwrap();
    }
    store.remove_image(2).unwrap();
}

fn assert_outcomes_identical(a: &QueryOutcome, b: &QueryOutcome, ctx: &str) {
    assert_eq!(a.status, b.status, "{ctx}: status diverged");
    assert_eq!(a.stats, b.stats, "{ctx}: query stats diverged");
    assert_eq!(a.matches.len(), b.matches.len(), "{ctx}: match count diverged");
    for (x, y) in a.matches.iter().zip(&b.matches) {
        assert_eq!(x.image_id, y.image_id, "{ctx}: ranking diverged");
        assert_eq!(x.name, y.name, "{ctx}: name diverged");
        assert_eq!(
            x.similarity.to_bits(),
            y.similarity.to_bits(),
            "{ctx}: similarity of {} diverged",
            x.name
        );
        assert_eq!(x.matched_pairs, y.matched_pairs, "{ctx}: matched pairs of {}", x.name);
    }
}

// ---------------------------------------------------------------------------
// 1. Fault sweeps: every op index of the migration, every crash mode.
// ---------------------------------------------------------------------------

/// Ops the clean migration performs under the store root (a never-firing
/// sentinel fault arms the prefix counter after the workload, so only the
/// rebalance itself is counted).
fn clean_rebalance_op_count(fx: &Fixtures, from: usize, to: usize) -> usize {
    let io = Arc::new(FaultIo::new());
    let (store, _) = ShardedStore::open_with(io.clone(), "db", sweep_params(), from).unwrap();
    apply_workload(fx, &store);
    io.arm_fault_at_path("db", Fault { at_op: usize::MAX, kind: FaultKind::Error });
    store.rebalance(to).unwrap();
    io.op_count_at_path("db")
}

/// The sweep: for every op index of the migration, both halting fault
/// kinds, and every crash mode, the interrupted store must reopen healthy
/// on the source or target layout, answer the oracle's exact bits, accept
/// writes, and scrub clean.
fn rebalance_fault_sweep(from: usize, to: usize) {
    let fx = Fixtures::new();
    let query = scene(0.15);

    // Never-migrated oracle: the same workload on the source layout.
    let oracle = {
        let io = Arc::new(FaultIo::new());
        let (store, _) =
            ShardedStore::open_with(io, "db", sweep_params(), from).unwrap();
        apply_workload(&fx, &store);
        store.query(&query).unwrap()
    };
    assert!(!oracle.matches.is_empty(), "the oracle matched nothing — the sweep is vacuous");

    let ops = clean_rebalance_op_count(&fx, from, to);
    assert!(ops > 0, "the migration must perform I/O");

    for at_op in 0..ops {
        for kind in [FaultKind::Error, FaultKind::ShortWrite] {
            for mode in ALL_CRASH_MODES {
                let ctx = format!(
                    "{from}->{to}, fault {kind:?} at op {at_op}, crash {mode:?}"
                );
                let io = Arc::new(FaultIo::new());
                let (store, _) =
                    ShardedStore::open_with(io.clone(), "db", sweep_params(), from).unwrap();
                apply_workload(&fx, &store);
                io.arm_fault_at_path("db", Fault { at_op, kind });
                let result = store.rebalance(to);
                assert!(io.is_halted(), "{ctx}: the armed fault never fired");
                drop(store);
                io.crash(mode);

                // Crash at ANY op leaves the store openable: the interrupted
                // migration resumes or rolls back, quarantining nothing.
                let (store, recoveries) =
                    ShardedStore::open_with(io.clone(), "db", sweep_params(), 0)
                        .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
                assert!(
                    recoveries.iter().all(|r| r.error.is_none()),
                    "{ctx}: reopen quarantined a shard: {recoveries:?}"
                );
                let count = store.shard_count();
                assert!(
                    count == from || count == to,
                    "{ctx}: reopened on an impossible layout of {count} shards"
                );
                if result.is_ok() {
                    assert_eq!(count, to, "{ctx}: a committed rebalance was lost on reopen");
                }

                // Bit-identity to the never-migrated oracle.
                let outcome = store
                    .query(&query)
                    .unwrap_or_else(|e| panic!("{ctx}: post-reopen query failed: {e}"));
                assert_outcomes_identical(&oracle, &outcome, &ctx);

                // Writes are restored (the migration flag never leaks).
                let before = store.len();
                fx.insert(&store, 0)
                    .unwrap_or_else(|e| panic!("{ctx}: post-reopen ingest failed: {e}"));
                assert_eq!(store.len(), before + 1, "{ctx}: post-reopen insert lost");
                drop(store);

                // The surviving layout is fully intact on disk: a stable
                // manifest and every shard's snapshot + WAL CRC-clean.
                let manifest = read_manifest(&*io, Path::new("db"))
                    .unwrap_or_else(|e| panic!("{ctx}: manifest unreadable: {e}"));
                assert!(
                    manifest.migration.is_none(),
                    "{ctx}: reopen left the manifest migrating"
                );
                let verdicts = scrub_store(&*io, Path::new("db"), None)
                    .unwrap_or_else(|e| panic!("{ctx}: scrub refused the store: {e}"));
                for v in &verdicts {
                    assert!(
                        v.scrub.clean(),
                        "{ctx}: shard {} failed scrub: {:?}",
                        v.shard,
                        v.scrub
                    );
                }
            }
        }
    }
}

#[test]
fn fault_sweep_scale_out_from_one_shard() {
    rebalance_fault_sweep(1, 4);
}

#[test]
fn fault_sweep_scale_in() {
    rebalance_fault_sweep(4, 2);
}

#[test]
fn fault_sweep_scale_out() {
    rebalance_fault_sweep(4, 8);
}

// ---------------------------------------------------------------------------
// 2. Mid-migration serving: queries identical, ingest shed, then commit.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct GateState {
    entered: bool,
    released: bool,
}

/// I/O wrapper that blocks the first write under one directory prefix
/// (once armed) until released — freezes the migration inside a target
/// shard build without sleeping.
#[derive(Debug)]
struct GateIo {
    inner: Arc<FaultIo>,
    gate_prefix: PathBuf,
    armed: AtomicBool,
    state: Mutex<GateState>,
    cv: Condvar,
}

impl GateIo {
    fn new(inner: Arc<FaultIo>, gate_prefix: PathBuf) -> Self {
        Self {
            inner,
            gate_prefix,
            armed: AtomicBool::new(false),
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        }
    }

    /// Blocks the calling (migration) thread at the gate until released.
    fn block_if_gated(&self, path: &Path) {
        if !self.armed.load(Ordering::Acquire) || !path.starts_with(&self.gate_prefix) {
            return;
        }
        let mut st = self.state.lock().unwrap();
        st.entered = true;
        self.cv.notify_all();
        while !st.released {
            let (next, timeout) =
                self.cv.wait_timeout(st, Duration::from_secs(30)).unwrap();
            st = next;
            assert!(!timeout.timed_out(), "gate never released — test deadlock");
        }
    }

    /// Waits until the migration thread is parked inside the gate.
    fn wait_entered(&self) {
        let mut st = self.state.lock().unwrap();
        while !st.entered {
            let (next, timeout) =
                self.cv.wait_timeout(st, Duration::from_secs(30)).unwrap();
            st = next;
            assert!(
                !timeout.timed_out(),
                "the migration never reached the gated target-shard write"
            );
        }
    }

    fn release(&self) {
        let mut st = self.state.lock().unwrap();
        st.released = true;
        self.cv.notify_all();
    }
}

impl StorageIo for GateIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.block_if_gated(path);
        self.inner.write(path, bytes)
    }
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.inner.append(path, bytes)
    }
    fn fsync(&self, path: &Path) -> io::Result<()> {
        self.inner.fsync(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.inner.truncate(path, len)
    }
    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }
}

#[test]
fn queries_serve_the_source_layout_while_the_migration_runs() {
    const FROM: usize = 4;
    const TO: usize = 2;
    let fx = Fixtures::new();
    let query = scene(0.15);
    let fault = Arc::new(FaultIo::new());
    let (store, _) =
        ShardedStore::open_with(fault.clone(), "db", sweep_params(), FROM).unwrap();
    apply_workload(&fx, &store);
    let reference = store.query(&query).unwrap();
    assert!(!reference.matches.is_empty(), "the scenario matched nothing");
    drop(store);

    // Gate the first write inside target shard 0's build (epoch-1 dirs),
    // freezing the migration after it durably declared itself.
    let gate = Arc::new(GateIo::new(
        fault.clone(),
        Path::new("db").join(shard_dir_name_at(1, 0)),
    ));
    let (store, _) = ShardedStore::open_with(gate.clone(), "db", sweep_params(), 0).unwrap();
    let store = Arc::new(store);
    gate.armed.store(true, Ordering::Release);

    let rebalancer = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || store.rebalance(TO))
    };
    gate.wait_entered();

    // The migration is mid-flight: progress is visible...
    let status = store.rebalance_status();
    assert!(status.rebalancing, "status must show the live migration");
    assert_eq!(status.target_shards, TO);
    assert_eq!(status.epoch, 0, "the epoch bumps only at commit");

    // ...queries answer from the source layout, bit for bit...
    let outcome = store.query(&query).unwrap();
    assert_outcomes_identical(&reference, &outcome, "mid-migration query");

    // ...and every mutation path sheds with the typed error.
    match fx.insert(&store, 0) {
        Err(WalrusError::Rebalancing) => {}
        other => panic!("mid-migration ingest must shed with Rebalancing, got {other:?}"),
    }
    match store.checkpoint() {
        Err(WalrusError::Rebalancing) => {}
        other => panic!("mid-migration checkpoint must shed with Rebalancing, got {other:?}"),
    }
    match store.rebalance(8) {
        Err(WalrusError::Rebalancing) => {}
        other => panic!("concurrent rebalance must shed with Rebalancing, got {other:?}"),
    }

    gate.release();
    let report = rebalancer.join().unwrap().unwrap();
    assert_eq!((report.from_shards, report.to_shards, report.epoch), (FROM, TO, 1));

    // Committed: same answers from the new layout, writes restored.
    let status = store.rebalance_status();
    assert!(!status.rebalancing);
    assert_eq!(status.epoch, 1);
    assert_eq!(status.shards_migrated, TO);
    let outcome = store.query(&query).unwrap();
    assert_outcomes_identical(&reference, &outcome, "post-commit query");
    let id = store.insert_regions("after-commit", 32, 32, fx.regions[0].1.clone()).unwrap();
    let with_insert = store.query(&query).unwrap();
    drop(store);

    // The commit and the post-commit write are durable across a reopen.
    let (store, recoveries) =
        ShardedStore::open_with(fault, "db", sweep_params(), 0).unwrap();
    assert!(recoveries.iter().all(|r| r.error.is_none()), "{recoveries:?}");
    assert_eq!(store.shard_count(), TO);
    assert_eq!(store.image_meta(id).unwrap().unwrap().name, "after-commit");
    let outcome = store.query(&query).unwrap();
    assert_outcomes_identical(&with_insert, &outcome, "post-reopen query");
}

// ---------------------------------------------------------------------------
// 3. Mixed snapshot versions: v2 + v3 shards reopen and rebalance.
// ---------------------------------------------------------------------------

#[test]
fn mixed_version_shard_snapshots_reopen_and_rebalance() {
    const FROM: usize = 4;
    const TO: usize = 8;
    let fx = Fixtures::new();
    let query = scene(0.15);
    let io = Arc::new(FaultIo::new());
    let (store, _) = ShardedStore::open_with(io.clone(), "db", sweep_params(), FROM).unwrap();
    apply_workload(&fx, &store);
    let reference = store.query(&query).unwrap();
    assert!(!reference.matches.is_empty(), "the scenario matched nothing");
    // Fold the WALs so the rewritten snapshots carry the whole state.
    store.checkpoint().unwrap();
    drop(store);

    // Downgrade half the shards to v2 snapshot envelopes (no persisted
    // signatures, no covered LSN) — the layout a pre-upgrade node left.
    for shard in [0usize, 2] {
        let snap = Path::new("db").join(shard_dir_name_at(0, shard)).join(SNAPSHOT_FILE);
        let (db, _) = persist::load_from_file_with(&*io, &snap).unwrap();
        persist::atomic_write_bytes(&*io, &snap, &persist::save_v2(&db)).unwrap();
    }

    // The mixed store reopens healthy and answers the exact same bits
    // (signatures are recomputed deterministically for the v2 shards).
    let (store, recoveries) =
        ShardedStore::open_with(io.clone(), "db", sweep_params(), 0).unwrap();
    assert!(recoveries.iter().all(|r| r.error.is_none()), "{recoveries:?}");
    let outcome = store.query(&query).unwrap();
    assert_outcomes_identical(&reference, &outcome, "mixed-version reopen");

    // Rebalancing the mixed store writes a uniform all-v3 target layout.
    let report = store.rebalance(TO).unwrap();
    assert_eq!((report.from_shards, report.to_shards, report.epoch), (FROM, TO, 1));
    let outcome = store.query(&query).unwrap();
    assert_outcomes_identical(&reference, &outcome, "mixed-version post-rebalance");
    drop(store);

    let (store, recoveries) =
        ShardedStore::open_with(io.clone(), "db", sweep_params(), 0).unwrap();
    assert!(recoveries.iter().all(|r| r.error.is_none()), "{recoveries:?}");
    assert_eq!(store.shard_count(), TO);
    let outcome = store.query(&query).unwrap();
    assert_outcomes_identical(&reference, &outcome, "mixed-version post-rebalance reopen");
    drop(store);
    let verdicts = scrub_store(&*io, Path::new("db"), None).unwrap();
    assert_eq!(verdicts.len(), TO);
    for v in &verdicts {
        assert!(v.scrub.clean(), "shard {} failed scrub: {:?}", v.shard, v.scrub);
    }
}
