//! Minimal blocking HTTP/1.1 client — just enough to exercise the server
//! from tests and the `walrus bench-http` load generator. Keep-alive,
//! `Content-Length` framing only (which is all the server emits).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::find_head_end;

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    pub status: u16,
    /// Header fields with lowercased names.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to one server.
pub struct Client {
    stream: TcpStream,
    /// Leftover bytes past the previous response (pipelining safety).
    buf: Vec<u8>,
}

impl Client {
    /// Connects with a 10s read timeout so a wedged server fails the test
    /// instead of hanging it.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client { stream, buf: Vec::new() })
    }

    /// Sends one request and reads the response. `target` carries the query
    /// string if any; `body` may be empty.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> std::io::Result<ClientResponse> {
        let mut msg = format!(
            "{method} {target} HTTP/1.1\r\nHost: walrus\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        )
        .into_bytes();
        msg.extend_from_slice(body);
        self.stream.write_all(&msg)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn fill(&mut self) -> std::io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let truncated =
            || std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "truncated response");
        let malformed =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());

        let (head_len, body_start) = loop {
            if let Some(found) = find_head_end(&self.buf) {
                break found;
            }
            if self.fill()? == 0 {
                return Err(truncated());
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_len]).into_owned();
        self.buf.drain(..body_start);

        let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
        let status_line = lines.next().unwrap_or("");
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| malformed("bad status line"))?;
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line.split_once(':').ok_or_else(|| malformed("bad header"))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let content_length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .map(|(_, v)| v.parse::<usize>().map_err(|_| malformed("bad content-length")))
            .transpose()?
            .unwrap_or(0);

        while self.buf.len() < content_length {
            if self.fill()? == 0 {
                return Err(truncated());
            }
        }
        let body: Vec<u8> = self.buf.drain(..content_length).collect();
        Ok(ClientResponse { status, headers, body })
    }

    /// The raw stream, for tests that need to write hostile bytes directly.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
