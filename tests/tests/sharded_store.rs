//! Sharded-store integration suite: the robustness contract of
//! [`ShardedStore`] end to end.
//!
//! 1. **Bit-identity** — scatter-gather answers over 1, 4, and
//!    `WALRUS_SHARDS` shards are bit-identical (ids, names, similarity
//!    bits, stats, status) to the monolithic in-memory engine, before and
//!    after a reopen.
//! 2. **Multi-shard fault sweep** — `Error` / `ShortWrite` injected at
//!    *every* I/O operation index of *every* shard of a mixed
//!    insert/remove/checkpoint workload, under every [`CrashMode`]: the
//!    store always reopens with at most the faulted shard quarantined,
//!    every healthy shard in a committed state, and `recover_shard`
//!    always restores a writable, committed store.
//! 3. **Torn WAL, one shard** — mid-log corruption in exactly one shard's
//!    WAL quarantines that shard only; healthy shards' files are
//!    byte-identical to a clean reopen; queries answer `Degraded`; ingest
//!    sheds with a typed error; repair + re-ingest succeed.
//! 4. **Rolling checkpoint** — a scripted interleaving (gated I/O) proves
//!    an ingest on shard A commits while shard B is mid-checkpoint.
//! 5. **Degraded HTTP smoke** — a live server over a store with one
//!    quarantined shard reports per-shard health, answers queries `206
//!    "degraded"`, and sheds ingest with a typed `503` body.
//!
//! The shard count for the sweep and the HTTP smoke follows the
//! `WALRUS_SHARDS` CI matrix (default 4), so the degenerate 1-shard store
//! walks the same assertions.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use walrus_core::recovery::WAL_FILE;
use walrus_core::sharded::{shard_dir_name, shard_of};
use walrus_core::storage::{Fault, FaultIo, FaultKind, ALL_CRASH_MODES};
use walrus_core::wal::WAL_HEADER_LEN;
use walrus_core::{
    extract_regions, ImageDatabase, QueryOutcome, Region, Result, ResultStatus, ShardedStore,
    StorageIo, WalrusError, WalrusParams,
};
use walrus_imagery::ppm::write_ppm;
use walrus_imagery::synth::dataset::{
    flower_query_scenario, DatasetSpec, ImageClass, SyntheticDataset,
};
use walrus_imagery::synth::scene::{Scene, SceneObject};
use walrus_imagery::synth::shapes::Shape;
use walrus_imagery::synth::texture::{Rgb, Texture};
use walrus_imagery::{ColorSpace, Image};
use walrus_server::{Client, Server, ServerConfig};

/// Shard count under test: the `WALRUS_SHARDS` CI matrix, default 4.
fn shard_count() -> usize {
    std::env::var("WALRUS_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| (1..=8).contains(&n))
        .unwrap_or(4)
}

fn sweep_params() -> WalrusParams {
    WalrusParams {
        sliding: walrus_wavelet::SlidingParams { s: 2, omega_min: 8, omega_max: 16, stride: 4 },
        ..WalrusParams::paper_defaults()
    }
}

fn scene(hue: f32) -> Image {
    Scene::new(Texture::Solid(Rgb(hue, 0.4, 0.3)))
        .with(SceneObject::new(
            Shape::Ellipse { rx: 0.5, ry: 0.5 },
            Texture::Solid(Rgb(0.9, 0.2, 0.2)),
            (0.5, 0.5),
            0.4,
        ))
        .render(32, 32)
        .unwrap()
}

fn shard_prefix(root: &str, shard: usize) -> PathBuf {
    Path::new(root).join(shard_dir_name(shard))
}

// ---------------------------------------------------------------------------
// 1. Bit-identity: sharded == monolithic, for every shard count.
// ---------------------------------------------------------------------------

fn engine_params() -> WalrusParams {
    WalrusParams {
        sliding: walrus_wavelet::SlidingParams { s: 2, omega_min: 8, omega_max: 32, stride: 4 },
        ..WalrusParams::paper_defaults()
    }
}

fn assert_outcomes_identical(a: &QueryOutcome, b: &QueryOutcome, ctx: &str) {
    assert_eq!(a.status, b.status, "{ctx}: status diverged");
    assert_eq!(a.stats, b.stats, "{ctx}: query stats diverged");
    assert_eq!(a.matches.len(), b.matches.len(), "{ctx}: match count diverged");
    for (x, y) in a.matches.iter().zip(&b.matches) {
        assert_eq!(x.image_id, y.image_id, "{ctx}: ranking diverged");
        assert_eq!(x.name, y.name, "{ctx}: name diverged");
        assert_eq!(
            x.similarity.to_bits(),
            y.similarity.to_bits(),
            "{ctx}: similarity of {} diverged",
            x.name
        );
        assert_eq!(x.matched_pairs, y.matched_pairs, "{ctx}: matched pairs of {}", x.name);
    }
}

#[test]
fn sharded_answers_are_bit_identical_to_monolithic() {
    let params = engine_params();
    let dataset = SyntheticDataset::generate(DatasetSpec {
        images_per_class: 1,
        width: 128,
        height: 96,
        seed: 0x5AD5,
        classes: ImageClass::ALL.to_vec(),
    })
    .unwrap();
    let items: Vec<(&str, &Image)> =
        dataset.images.iter().map(|i| (i.name.as_str(), &i.image)).collect();

    let mut mono = ImageDatabase::new(params).unwrap();
    mono.insert_images_batch(&items).unwrap();

    let (query, variants) = flower_query_scenario(0x53, 128, 96, 1).unwrap();
    let queries: Vec<&Image> = std::iter::once(&query).chain(variants.iter()).collect();
    let reference: Vec<QueryOutcome> = queries.iter().map(|q| mono.query(q).unwrap()).collect();
    assert!(
        reference.iter().any(|o| !o.matches.is_empty()),
        "the reference sweep matched nothing — the scenario is vacuous"
    );

    let mut counts = vec![1, 4];
    if !counts.contains(&shard_count()) {
        counts.push(shard_count());
    }
    for shards in counts {
        let io = Arc::new(FaultIo::new());
        let (store, _) = ShardedStore::open_with(io.clone(), "db", params, shards).unwrap();
        store.insert_images_batch(&items).unwrap();
        assert_eq!(store.len(), mono.len(), "shards {shards}");
        assert_eq!(store.num_regions(), mono.num_regions(), "shards {shards}");
        for (qi, q) in queries.iter().enumerate() {
            let outcome = store.query(q).unwrap();
            assert_outcomes_identical(
                &reference[qi],
                &outcome,
                &format!("shards {shards}, query {qi}"),
            );
        }

        // The identity must survive a shutdown + WAL replay.
        drop(store);
        let (store, recoveries) = ShardedStore::open_with(io, "db", params, 0).unwrap();
        assert!(
            recoveries.iter().all(|r| r.error.is_none()),
            "shards {shards}: clean reopen quarantined a shard: {recoveries:?}"
        );
        for (qi, q) in queries.iter().enumerate() {
            let outcome = store.query(q).unwrap();
            assert_outcomes_identical(
                &reference[qi],
                &outcome,
                &format!("shards {shards} after reopen, query {qi}"),
            );
        }
    }
}

/// The shard-parallel batch path must be indistinguishable on disk from
/// serial ingest: per-shard WAL records land in ascending-id order, so every
/// file the two stores write is byte-identical — even though the batch
/// version runs the shards concurrently on the worker pool.
#[test]
fn batch_ingest_wal_bytes_identical_to_serial() {
    let params = engine_params();
    let dataset = SyntheticDataset::generate(DatasetSpec {
        images_per_class: 2,
        width: 64,
        height: 48,
        seed: 0xBA7C,
        classes: ImageClass::ALL.to_vec(),
    })
    .unwrap();
    let items: Vec<(&str, &Image)> =
        dataset.images.iter().map(|i| (i.name.as_str(), &i.image)).collect();

    let shards = shard_count();
    let batch_io = Arc::new(FaultIo::new());
    let (batch_store, _) = ShardedStore::open_with(batch_io.clone(), "db", params, shards).unwrap();
    let batch_ids = batch_store.insert_images_batch(&items).unwrap();

    let serial_io = Arc::new(FaultIo::new());
    let (serial_store, _) =
        ShardedStore::open_with(serial_io.clone(), "db", params, shards).unwrap();
    let serial_ids: Vec<usize> =
        items.iter().map(|(name, image)| serial_store.insert_image(name, image).unwrap()).collect();

    assert_eq!(batch_ids, serial_ids, "batch and serial ingest assigned different ids");
    drop(batch_store);
    drop(serial_store);

    let batch_files: BTreeMap<PathBuf, Vec<u8>> = batch_io
        .file_names()
        .into_iter()
        .map(|p| {
            let bytes = batch_io.file_bytes(&p).unwrap();
            (p, bytes)
        })
        .collect();
    let serial_names: Vec<PathBuf> = serial_io.file_names();
    assert_eq!(
        batch_files.keys().cloned().collect::<Vec<_>>(),
        {
            let mut v = serial_names.clone();
            v.sort();
            v
        },
        "batch and serial ingest produced different file sets"
    );
    for (path, bytes) in &batch_files {
        assert_eq!(
            serial_io.file_bytes(path).as_ref(),
            Some(bytes),
            "{} diverged between batch and serial ingest",
            path.display()
        );
    }
    // Sanity: the comparison actually covered every shard's WAL.
    for shard in 0..shards {
        let wal = shard_prefix("db", shard).join(WAL_FILE);
        assert!(batch_files.contains_key(&wal), "missing WAL for shard {shard}");
    }
}

// ---------------------------------------------------------------------------
// 2. Fault sweep: every op index of every shard, every crash mode.
// ---------------------------------------------------------------------------

/// Pre-extracted regions for the workload images: extraction is
/// deterministic, so the hundreds of sweep iterations skip the wavelet work.
struct Fixtures {
    regions: Vec<(String, Vec<Region>)>,
}

impl Fixtures {
    fn new() -> Self {
        let p = sweep_params();
        let regions = (0..7)
            .map(|i| {
                let name = format!("img{i}");
                let r = extract_regions(&scene(0.1 + 0.11 * i as f32), &p).unwrap();
                (name, r)
            })
            .collect();
        Self { regions }
    }

    fn insert(&self, store: &ShardedStore, i: usize) -> Result<()> {
        let (name, regions) = &self.regions[i];
        store.insert_regions(name, 32, 32, regions.clone())?;
        Ok(())
    }
}

/// The workload: 9 commit points mixing inserts (spread across shards by
/// the id hash), a remove, and a rolling checkpoint.
const STEPS: usize = 9;

fn apply(fx: &Fixtures, store: &ShardedStore, step: usize) -> Result<()> {
    match step {
        0 => fx.insert(store, 0),
        1 => fx.insert(store, 1),
        2 => fx.insert(store, 2),
        3 => store.remove_image(1),
        4 => store.checkpoint().map(|_| ()),
        5 => fx.insert(store, 3),
        6 => fx.insert(store, 4),
        7 => fx.insert(store, 5),
        8 => fx.insert(store, 6),
        _ => unreachable!(),
    }
}

/// Live image names per shard, in id order — the observable state the
/// oracle compares. Quarantined shards read as empty (their ids error).
fn live_by_shard(store: &ShardedStore, shards: usize) -> Vec<Vec<String>> {
    let mut out = vec![Vec::new(); shards];
    for id in 0..store.next_id() {
        if let Ok(Some(meta)) = store.image_meta(id) {
            out[shard_of(id, shards)].push(meta.name);
        }
    }
    out
}

/// Runs the workload fault-free and records the per-shard state after `k`
/// completed steps, for k = 0..=STEPS.
fn committed_states(fx: &Fixtures, shards: usize) -> Vec<Vec<Vec<String>>> {
    let io = Arc::new(FaultIo::new());
    let (store, _) = ShardedStore::open_with(io, "db", sweep_params(), shards).unwrap();
    let mut states = vec![live_by_shard(&store, shards)];
    for step in 0..STEPS {
        apply(fx, &store, step).unwrap();
        states.push(live_by_shard(&store, shards));
    }
    states
}

/// Ops the clean workload performs under each shard's directory (a
/// never-firing sentinel fault arms the per-prefix counters).
fn clean_op_counts(fx: &Fixtures, shards: usize) -> Vec<usize> {
    let io = Arc::new(FaultIo::new());
    let (store, _) = ShardedStore::open_with(io.clone(), "db", sweep_params(), shards).unwrap();
    for s in 0..shards {
        io.arm_fault_at_path(
            shard_prefix("db", s),
            Fault { at_op: usize::MAX, kind: FaultKind::Error },
        );
    }
    for step in 0..STEPS {
        apply(fx, &store, step).unwrap();
    }
    (0..shards).map(|s| io.op_count_at_path(shard_prefix("db", s))).collect()
}

#[test]
fn fault_sweep_over_every_op_of_every_shard_recovers_to_a_committed_state() {
    let shards = shard_count();
    let fx = Fixtures::new();
    let states = committed_states(&fx, shards);
    let op_counts = clean_op_counts(&fx, shards);
    assert!(
        op_counts.iter().all(|&n| n > 0),
        "every shard must see I/O in the clean run: {op_counts:?}"
    );

    for (shard, &shard_ops) in op_counts.iter().enumerate() {
        for at_op in 0..shard_ops {
            for kind in [FaultKind::Error, FaultKind::ShortWrite] {
                for mode in ALL_CRASH_MODES {
                    let ctx = format!(
                        "shard {shard}, fault {kind:?} at op {at_op}, crash {mode:?}"
                    );
                    let io = Arc::new(FaultIo::new());
                    let (store, _) =
                        ShardedStore::open_with(io.clone(), "db", sweep_params(), shards)
                            .unwrap();
                    io.arm_fault_at_path(shard_prefix("db", shard), Fault { at_op, kind });

                    let mut completed = 0;
                    for step in 0..STEPS {
                        match apply(&fx, &store, step) {
                            Ok(()) => completed += 1,
                            Err(_) => break,
                        }
                    }
                    assert!(io.is_halted(), "{ctx}: the armed fault never fired");
                    assert!(completed < STEPS, "{ctx}: a halting fault left every step Ok");
                    // Fault isolation *during* the run: only the faulted
                    // shard may be quarantined; everyone else is shed
                    // before their I/O runs.
                    let during = store.quarantined_shards();
                    assert!(
                        during.iter().all(|&q| q == shard),
                        "{ctx}: quarantined {during:?} during the run"
                    );

                    drop(store);
                    io.crash(mode);

                    let (store, _) =
                        ShardedStore::open_with(io.clone(), "db", sweep_params(), 0)
                            .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
                    let quarantined = store.quarantined_shards();
                    assert!(
                        quarantined.iter().all(|&q| q == shard),
                        "{ctx}: reopen quarantined {quarantined:?}"
                    );

                    // Every healthy shard must be in a committed state:
                    // after `completed` steps, or one step further if the
                    // in-flight record reached stable storage.
                    let observed = live_by_shard(&store, shards);
                    let lo = &states[completed];
                    let hi = &states[(completed + 1).min(STEPS)];
                    for s in 0..shards {
                        if quarantined.contains(&s) {
                            continue;
                        }
                        assert!(
                            observed[s] == lo[s] || observed[s] == hi[s],
                            "{ctx}: shard {s} holds {:?}, expected {:?} or {:?}",
                            observed[s],
                            lo[s],
                            hi[s]
                        );
                    }

                    // Explicit repair restores a writable store in a
                    // committed state — never a full-database failure.
                    for &q in &quarantined {
                        store
                            .recover_shard(q)
                            .unwrap_or_else(|e| panic!("{ctx}: recover_shard({q}) failed: {e}"));
                    }
                    let repaired = live_by_shard(&store, shards);
                    assert!(
                        repaired == *lo || repaired == *hi,
                        "{ctx}: repaired store holds {repaired:?}, expected {lo:?} or {hi:?}"
                    );
                    let before = store.len();
                    fx.insert(&store, 0).unwrap_or_else(|e| {
                        panic!("{ctx}: ingest after repair failed: {e}")
                    });
                    assert_eq!(store.len(), before + 1, "{ctx}: post-repair insert lost");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Torn WAL in exactly one shard (satellite: quarantine + byte-identity).
// ---------------------------------------------------------------------------

#[test]
fn torn_wal_in_one_shard_quarantines_only_that_shard() {
    const SHARDS: usize = 4;
    let params = sweep_params();
    let io = Arc::new(FaultIo::new());
    let (store, _) = ShardedStore::open_with(io.clone(), "db", params, SHARDS).unwrap();
    for i in 0..8 {
        store.insert_image(&format!("img{i}"), &scene(0.1 + 0.09 * i as f32)).unwrap();
    }
    // Pick the shard holding the most WAL records, so the corruption sits
    // mid-log (a flip in the *last* record is a torn tail, which reopen
    // repairs silently instead of quarantining).
    let victim = (0..SHARDS)
        .max_by_key(|&s| (0..8).filter(|&id| shard_of(id, SHARDS) == s).count())
        .unwrap();
    let victim_ids: Vec<usize> = (0..8).filter(|&id| shard_of(id, SHARDS) == victim).collect();
    assert!(victim_ids.len() >= 2, "need >= 2 records on the victim shard");
    let survivor_id = (0..8).find(|&id| shard_of(id, SHARDS) != victim).unwrap();
    drop(store);

    // Snapshot of every file before the damage: a clean reopen must leave
    // healthy shards' bytes exactly here.
    let clean: BTreeMap<PathBuf, Vec<u8>> = io
        .file_names()
        .into_iter()
        .map(|p| {
            let bytes = io.file_bytes(&p).unwrap();
            (p, bytes)
        })
        .collect();

    // Flip one payload byte of the victim's *first* WAL record.
    let wal_path = shard_prefix("db", victim).join(WAL_FILE);
    assert!(
        io.corrupt_byte(&wal_path, WAL_HEADER_LEN as usize + 8 + 4, 0x01),
        "victim WAL too short to corrupt"
    );

    let (store, recoveries) = ShardedStore::open_with(io.clone(), "db", params, 0).unwrap();
    assert_eq!(store.quarantined_shards(), vec![victim]);
    assert!(
        recoveries[victim].error.is_some(),
        "the victim's recovery must report the corruption: {recoveries:?}"
    );

    // Healthy shards: byte-identical to the clean state.
    let victim_prefix = shard_prefix("db", victim);
    for (path, bytes) in &clean {
        if path.starts_with(&victim_prefix) {
            continue;
        }
        assert_eq!(
            io.file_bytes(path).as_ref(),
            Some(bytes),
            "healthy file {} diverged from the clean reopen",
            path.display()
        );
    }

    // Reads: degraded queries over the healthy shards, typed routing errors
    // for the victim's ids.
    let outcome = store.query(&scene(0.1)).unwrap();
    assert_eq!(
        outcome.status,
        ResultStatus::Degraded { shards_unavailable: vec![victim] }
    );
    assert!(
        outcome.matches.iter().all(|m| shard_of(m.image_id, SHARDS) != victim),
        "a quarantined shard's image leaked into the answer"
    );
    assert!(store.image_meta(survivor_id).unwrap().is_some());
    match store.image_meta(victim_ids[0]) {
        Err(WalrusError::ShardUnavailable { shard }) => assert_eq!(shard, victim),
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }

    // Writes: shed with the typed error.
    match store.insert_image("rejected", &scene(0.9)) {
        Err(WalrusError::ShardUnavailable { shard }) => assert_eq!(shard, victim),
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }

    // Explicit repair: damage truncated, quarantine lifted, re-ingest works.
    let repair = store.recover_shard(victim).unwrap();
    assert_eq!(repair.shard, victim);
    assert!(repair.truncated_bytes > 0, "repair must drop the damaged suffix");
    assert!(store.quarantined_shards().is_empty());
    let id = store.insert_image("after-repair", &scene(0.95)).unwrap();
    assert_eq!(store.image_meta(id).unwrap().unwrap().name, "after-repair");
    let outcome = store.query(&scene(0.1)).unwrap();
    assert_eq!(outcome.status, ResultStatus::Complete);
}

#[test]
fn quarantined_shard_health_keeps_last_known_counts() {
    const SHARDS: usize = 2;
    let params = sweep_params();
    let io = Arc::new(FaultIo::new());
    let (store, _) = ShardedStore::open_with(io.clone(), "db", params, SHARDS).unwrap();
    for i in 0..8 {
        store.insert_image(&format!("img{i}"), &scene(0.1 + 0.09 * i as f32)).unwrap();
    }
    let before = store.shard_health();
    assert!(
        before.iter().all(|h| h.healthy && h.images > 0 && h.wal_bytes > 0),
        "both shards must hold data before the fault: {before:?}"
    );

    // Fail the next I/O on the shard the next insert routes to; the failed
    // append quarantines it.
    let victim = shard_of(store.next_id(), SHARDS);
    io.arm_fault_at_path(shard_prefix("db", victim), Fault { at_op: 0, kind: FaultKind::Error });
    store.insert_image("boom", &scene(0.9)).unwrap_err();
    assert_eq!(store.quarantined_shards(), vec![victim]);

    // Health keeps the last counts observed while healthy — gauges must not
    // pretend a failed shard lost its images.
    let after = store.shard_health();
    for (b, a) in before.iter().zip(&after) {
        if a.shard == victim {
            assert!(!a.healthy);
            assert!(a.error.is_some());
            assert_eq!(a.images, b.images, "last-known image count lost on quarantine");
            assert_eq!(a.wal_bytes, b.wal_bytes, "last-known WAL size lost on quarantine");
        } else {
            assert_eq!(a, b, "healthy shard's health changed");
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Rolling checkpoint: ingest commits while another shard checkpoints.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct GateState {
    entered: bool,
    released: bool,
}

/// I/O wrapper that blocks the first mutating operation under one shard's
/// directory (once armed) until released — a scripted interleaving that
/// freezes a rolling checkpoint mid-shard without sleeping.
#[derive(Debug)]
struct GateIo {
    inner: Arc<FaultIo>,
    gate_prefix: PathBuf,
    armed: AtomicBool,
    state: Mutex<GateState>,
    cv: Condvar,
}

impl GateIo {
    fn new(inner: Arc<FaultIo>, gate_prefix: PathBuf) -> Self {
        Self {
            inner,
            gate_prefix,
            armed: AtomicBool::new(false),
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        }
    }

    /// Blocks the calling (checkpoint) thread at the gate until released.
    fn block_if_gated(&self, path: &Path) {
        if !self.armed.load(Ordering::Acquire) || !path.starts_with(&self.gate_prefix) {
            return;
        }
        let mut st = self.state.lock().unwrap();
        st.entered = true;
        self.cv.notify_all();
        while !st.released {
            let (next, timeout) =
                self.cv.wait_timeout(st, Duration::from_secs(30)).unwrap();
            st = next;
            assert!(!timeout.timed_out(), "gate never released — test deadlock");
        }
    }

    /// Waits until the checkpoint thread is parked inside the gate.
    fn wait_entered(&self) {
        let mut st = self.state.lock().unwrap();
        while !st.entered {
            let (next, timeout) =
                self.cv.wait_timeout(st, Duration::from_secs(30)).unwrap();
            st = next;
            assert!(
                !timeout.timed_out(),
                "checkpoint never reached the gated shard's snapshot write"
            );
        }
    }

    fn release(&self) {
        let mut st = self.state.lock().unwrap();
        st.released = true;
        self.cv.notify_all();
    }
}

impl StorageIo for GateIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.block_if_gated(path);
        self.inner.write(path, bytes)
    }
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.inner.append(path, bytes)
    }
    fn fsync(&self, path: &Path) -> io::Result<()> {
        self.inner.fsync(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.inner.truncate(path, len)
    }
    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }
}

#[test]
fn ingest_commits_while_another_shard_is_mid_checkpoint() {
    const SHARDS: usize = 4;
    let fx = Fixtures::new();
    let fault = Arc::new(FaultIo::new());
    let (store, _) = ShardedStore::open_with(fault.clone(), "db", sweep_params(), SHARDS).unwrap();
    for i in 0..7 {
        fx.insert(&store, i).unwrap();
    }
    let next = store.next_id();
    drop(store);

    // Gate a shard the next insert will NOT touch, so the insert cannot be
    // waiting on the very lock the frozen checkpoint holds.
    let target_shard = shard_of(next, SHARDS);
    let gate_shard = (0..SHARDS).find(|&s| s != target_shard).unwrap();
    let gate = Arc::new(GateIo::new(fault.clone(), shard_prefix("db", gate_shard)));

    let (store, _) =
        ShardedStore::open_with(gate.clone(), "db", sweep_params(), 0).unwrap();
    let store = Arc::new(store);
    gate.armed.store(true, Ordering::Release);

    let checkpointer = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || store.checkpoint())
    };
    gate.wait_entered();
    // Shard `gate_shard` is now mid-checkpoint, its write lock held, its
    // snapshot write frozen. An ingest routed to `target_shard` must
    // commit anyway — the rolling checkpoint never stops the world.
    let id = store.insert_regions("mid-checkpoint", 32, 32, fx.regions[0].1.clone()).unwrap();
    assert_eq!(id, next);
    assert_eq!(shard_of(id, SHARDS), target_shard);
    assert_eq!(store.image_meta(id).unwrap().unwrap().name, "mid-checkpoint");
    assert!(
        !checkpointer.is_finished(),
        "checkpoint finished while gated — the interleaving proves nothing"
    );

    gate.release();
    let reports = checkpointer.join().unwrap().unwrap();
    assert_eq!(reports.len(), SHARDS, "every healthy shard must report a checkpoint");

    // The mid-checkpoint commit is durable: visible after a cold reopen.
    drop(store);
    let (store, recoveries) =
        ShardedStore::open_with(fault, "db", sweep_params(), 0).unwrap();
    assert!(recoveries.iter().all(|r| r.error.is_none()), "{recoveries:?}");
    assert_eq!(store.image_meta(id).unwrap().unwrap().name, "mid-checkpoint");
}

// ---------------------------------------------------------------------------
// 5. Degraded HTTP smoke: per-shard health, 206 queries, typed 503 ingest.
// ---------------------------------------------------------------------------

fn ppm_bytes(seed: usize) -> Vec<u8> {
    let img = Image::from_fn(16, 16, ColorSpace::Rgb, |x, y, c| {
        ((x / 4 + 2 * (y / 4) + c + seed) % 5) as f32 / 4.0
    })
    .unwrap();
    let mut buf = Vec::new();
    write_ppm(&img, &mut buf).unwrap();
    buf
}

fn http_params() -> WalrusParams {
    WalrusParams {
        sliding: walrus_wavelet::SlidingParams { s: 2, omega_min: 8, omega_max: 8, stride: 4 },
        ..WalrusParams::paper_defaults()
    }
}

#[test]
fn degraded_server_answers_queries_and_sheds_ingest() {
    let shards = shard_count();
    let dir = std::env::temp_dir()
        .join(format!("walrus_sharded_degraded_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let params = http_params();
    let images: Vec<Image> = (0..6)
        .map(|seed| walrus_imagery::ppm::parse_netpbm(&ppm_bytes(seed)).unwrap())
        .collect();
    {
        let (store, _) = ShardedStore::open(&dir, params, shards).unwrap();
        for (i, img) in images.iter().enumerate() {
            store.insert_image(&format!("img-{i}"), img).unwrap();
        }
    }

    // Corrupt the WAL of the shard holding the most records, mid-log, on
    // the real filesystem this time.
    let victim = (0..shards)
        .max_by_key(|&s| (0..6).filter(|&id| shard_of(id, shards) == s).count())
        .unwrap();
    let wal_path = dir.join(shard_dir_name(victim)).join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes[WAL_HEADER_LEN as usize + 8 + 4] ^= 0x01;
    std::fs::write(&wal_path, &bytes).unwrap();

    let (store, _) = ShardedStore::open(&dir, params, 0).unwrap();
    assert_eq!(store.quarantined_shards(), vec![victim]);

    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        drain_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    let handle = Server::start(config, store).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Health: overall degraded, per-shard detail.
    let resp = client.request("GET", "/healthz", &[]).unwrap();
    assert_eq!(resp.status, 200);
    let body = resp.text();
    assert!(body.contains("\"status\":\"degraded\""), "{body}");
    assert!(
        body.contains(&format!("{{\"shard\":{victim},\"healthy\":false")),
        "{body}"
    );

    // Metrics: per-shard gauges.
    let resp = client.request("GET", "/metrics", &[]).unwrap();
    let body = resp.text();
    assert!(body.contains("walrus_shards_quarantined 1"), "{body}");
    assert!(
        body.contains(&format!("walrus_shard_healthy{{shard=\"{victim}\"}} 0")),
        "{body}"
    );

    // Queries: answered over the healthy shards, marked degraded, 206.
    let resp = client.request("POST", "/query?k=6", &ppm_bytes(0)).unwrap();
    assert_eq!(resp.status, 206, "{}", resp.text());
    let body = resp.text();
    assert!(body.contains("\"status\":\"degraded\""), "{body}");
    assert!(
        body.contains(&format!("\"shards_unavailable\":[{victim}]")),
        "{body}"
    );

    // Ingest: shed with a typed 503 naming the quarantined shard.
    let resp = client
        .request("POST", "/ingest?name=rejected", &ppm_bytes(7))
        .unwrap();
    assert_eq!(resp.status, 503, "{}", resp.text());
    let body = resp.text();
    assert!(
        body.contains(&format!("\"shard_unavailable\":{victim}")),
        "{body}"
    );

    // Shutdown still drains cleanly: the rolling shutdown checkpoint skips
    // the quarantined shard instead of failing the stop.
    drop(client);
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
