//! **Figure 6(b)** — wavelet signature computation time, naive vs dynamic
//! programming, as the signature size grows.
//!
//! Paper setup: 256×256 image, 128×128 windows, stride 1, signature size
//! swept from 2×2 to 32×32. Claimed shape: naive time is flat (≈25 s — it
//! computes the full transform regardless of s), DP time grows slowly with
//! s; even at s=32 the DP algorithm is ≈5× faster.
//!
//! Run: `cargo run --release -p walrus-bench --bin fig6b`
//! (quick mode uses 64×64 windows; `WALRUS_BENCH_SCALE=full` uses the
//! paper's 128×128.)

use walrus_bench::report::{f3, Table};
use walrus_bench::workloads::timing_planes;
use walrus_bench::{scale, time, Scale};
use walrus_imagery::ColorSpace;
use walrus_wavelet::sliding::{compute_signatures, compute_signatures_naive};
use walrus_wavelet::SlidingParams;

fn main() {
    let side = 256;
    let omega = match scale() {
        Scale::Quick => 64,
        Scale::Full => 128,
    };
    let (planes, side) = timing_planes(side, ColorSpace::Ycc);
    let plane_refs: Vec<&[f32]> = planes.iter().map(|p| p.as_slice()).collect();

    println!(
        "Figure 6(b): naive vs DP sliding-window signatures\n\
         image {side}x{side}, 3 channels (YCC), window {omega}x{omega}, stride 1\n"
    );
    let mut table = Table::new(
        "Fig6b Signature Size Sweep",
        &["signature", "naive_s", "dp_s", "speedup"],
    );

    let mut s = 2usize;
    while s <= 32 && s <= omega {
        let params = SlidingParams { s, omega_min: omega, omega_max: omega, stride: 1 };
        let (naive, naive_s) = time(|| {
            compute_signatures_naive(&plane_refs, side, side, &params).expect("valid params")
        });
        let (dp, dp_s) =
            time(|| compute_signatures(&plane_refs, side, side, &params).expect("valid params"));
        assert_eq!(naive.len(), dp.len(), "algorithms disagree on window count");
        table.row(&[s.to_string(), f3(naive_s), f3(dp_s), f3(naive_s / dp_s.max(1e-9))]);
        s *= 2;
    }
    table.print();
    println!(
        "Paper shape check: naive time should stay ~constant across s; DP\n\
         time should grow with s but remain several times faster even at\n\
         s=32 (paper: ~5x)."
    );
}
