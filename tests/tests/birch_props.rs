//! Property-based tests for the BIRCH substrate: CF algebra laws and
//! clustering invariants over arbitrary point clouds.

use proptest::prelude::*;
use walrus_birch::{precluster, BirchParams, CfTree, ClusteringFeature};

fn points(dims: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(proptest::collection::vec(-2.0f32..2.0, dims), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cf_merge_is_associative_and_commutative(pts in points(3, 3..30)) {
        let third = pts.len() / 3;
        let cf_of = |slice: &[Vec<f32>]| {
            let mut cf = ClusteringFeature::empty(3);
            for p in slice {
                cf.add_point(p);
            }
            cf
        };
        let a = cf_of(&pts[..third]);
        let b = cf_of(&pts[third..2 * third]);
        let c = cf_of(&pts[2 * third..]);
        let ab_c = a.merged(&b).merged(&c);
        let a_bc = a.merged(&b.merged(&c));
        let ba_c = b.merged(&a).merged(&c);
        prop_assert_eq!(ab_c.count(), a_bc.count());
        for ((x, y), z) in ab_c.centroid().iter().zip(a_bc.centroid()).zip(ba_c.centroid()) {
            prop_assert!((x - y).abs() < 1e-9);
            prop_assert!((x - z).abs() < 1e-9);
        }
        prop_assert!((ab_c.radius() - a_bc.radius()).abs() < 1e-9);
    }

    #[test]
    fn cf_radius_bounds_member_rms(pts in points(2, 2..40)) {
        // Radius = RMS distance to centroid, computed incrementally, must
        // match the direct computation.
        let mut cf = ClusteringFeature::empty(2);
        for p in &pts {
            cf.add_point(p);
        }
        let c = cf.centroid();
        let rms = (pts
            .iter()
            .map(|p| {
                p.iter()
                    .zip(&c)
                    .map(|(&v, m)| (v as f64 - m) * (v as f64 - m))
                    .sum::<f64>()
            })
            .sum::<f64>()
            / pts.len() as f64)
            .sqrt();
        prop_assert!((cf.radius() - rms).abs() < 1e-6, "{} vs {}", cf.radius(), rms);
    }

    #[test]
    fn tree_conserves_points_and_respects_threshold(
        pts in points(3, 1..120),
        threshold in 0.0f64..0.5,
    ) {
        let mut tree = CfTree::new(3, BirchParams { threshold, ..Default::default() }).unwrap();
        for p in &pts {
            tree.insert(p).unwrap();
        }
        prop_assert_eq!(tree.num_points(), pts.len() as u64);
        let entries = tree.leaf_entry_clones();
        let total: u64 = entries.iter().map(|e| e.count()).sum();
        prop_assert_eq!(total, pts.len() as u64);
        for e in &entries {
            prop_assert!(e.radius() <= threshold + 1e-9, "radius {} > {}", e.radius(), threshold);
        }
        // Mass-weighted centroid is conserved.
        for d in 0..3 {
            let direct: f64 = pts.iter().map(|p| p[d] as f64).sum();
            let via_cf: f64 = entries.iter().map(|e| e.centroid()[d] * e.count() as f64).sum();
            prop_assert!((direct - via_cf).abs() < 1e-4);
        }
    }

    #[test]
    fn precluster_membership_partitions_input(pts in points(2, 1..80), eps in 0.0f64..0.6) {
        let result = precluster(&pts, eps, None).unwrap();
        prop_assert_eq!(result.assignments.len(), pts.len());
        let mut seen = vec![false; pts.len()];
        for (c, cluster) in result.clusters.iter().enumerate() {
            for &m in &cluster.members {
                prop_assert!(!seen[m], "point {} assigned twice", m);
                seen[m] = true;
                prop_assert_eq!(result.assignments[m], c);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "every point must belong to a cluster");
    }

    #[test]
    fn precluster_centroid_inside_member_bbox(pts in points(4, 1..60)) {
        let result = precluster(&pts, 0.2, None).unwrap();
        for cluster in &result.clusters {
            for ((c, lo), hi) in
                cluster.centroid().iter().zip(&cluster.bbox_min).zip(&cluster.bbox_max)
            {
                prop_assert!(*c >= lo - 1e-5);
                prop_assert!(*c <= hi + 1e-5);
            }
        }
    }

    #[test]
    fn budget_always_respected(pts in points(2, 10..150)) {
        let budget = 8;
        let result = precluster(&pts, 0.0, Some(budget)).unwrap();
        prop_assert!(result.clusters.len() <= budget);
        let total: usize = result.clusters.iter().map(|c| c.members.len()).sum();
        prop_assert_eq!(total, pts.len());
    }
}
