//! DP speedup demo: the paper's dynamic-programming claim in one run.
//!
//! Computes sliding-window signatures for one image with both algorithms,
//! verifies they agree coefficient-for-coefficient, and reports the
//! speedup — a miniature, self-checking version of the Figure 6(a)
//! experiment (the full sweep lives in `walrus-bench --bin fig6a`).
//!
//! Run: `cargo run --release -p walrus-examples --bin dp_speedup`

use std::time::Instant;
use walrus_imagery::synth::dataset::timing_image;
use walrus_imagery::ColorSpace;
use walrus_wavelet::sliding::{compute_signatures, compute_signatures_naive};
use walrus_wavelet::SlidingParams;

fn main() {
    let side = 256;
    let image = timing_image(side, side, 42)
        .and_then(|i| i.to_space(ColorSpace::Ycc))
        .expect("timing image renders");
    let planes: Vec<&[f32]> = image.channels().iter().map(|c| c.as_slice()).collect();

    let params = SlidingParams { s: 2, omega_min: 64, omega_max: 64, stride: 1 };
    println!(
        "image {side}x{side}, 3 channels; {}x{} windows at stride {}, {}x{} signatures",
        params.omega_max, params.omega_max, params.stride, params.s, params.s
    );
    println!("windows to sign: {}\n", params.total_windows(side, side));

    let t0 = Instant::now();
    let naive = compute_signatures_naive(&planes, side, side, &params).expect("valid params");
    let naive_s = t0.elapsed().as_secs_f64();
    println!("naive algorithm   (O(N·ω²)):        {naive_s:.3}s");

    let t0 = Instant::now();
    let dp = compute_signatures(&planes, side, side, &params).expect("valid params");
    let dp_s = t0.elapsed().as_secs_f64();
    println!("dynamic program   (O(N·S·log ω)):   {dp_s:.3}s");

    // Self-check: the two algorithms must agree exactly (up to f32 noise).
    assert_eq!(naive.len(), dp.len());
    let mut max_diff = 0.0f32;
    for (a, b) in naive.iter().zip(&dp) {
        assert_eq!((a.x, a.y, a.omega), (b.x, b.y, b.omega));
        for (c, d) in a.coeffs.iter().zip(&b.coeffs) {
            max_diff = max_diff.max((c - d).abs());
        }
    }
    println!("\nmax coefficient disagreement: {max_diff:.2e} (must be ~1e-5 or below)");
    assert!(max_diff < 1e-3, "algorithms diverged");
    println!("speedup: {:.1}x (the paper reports ~17x at ω=128 on 1997 hardware)", naive_s / dp_s);
}
