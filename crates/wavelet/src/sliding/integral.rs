//! Summed-area-table (integral image) sliding-window signatures — an
//! alternative algorithm beyond the paper.
//!
//! The paper's key identity (proved in `haar2d` and used by its DP) is that
//! a window's `s × s` signature equals the non-standard transform of the
//! window box-averaged down to `s × s`. But box averages of arbitrary
//! rectangles are *O(1)* given a summed-area table (Crow 1984): each of the
//! `s²` block averages is four table lookups. That gives every window's
//! signature in `O(S)` after an `O(N)` prefix pass — total
//! `O(N + W·S·(1 + log s))` with *no* dependence on `ω` at all, versus the
//! paper's `O(N·S·log ω_max)` DP which pays for every intermediate level.
//!
//! Two further advantages: windows need not be powers of two aligned to the
//! DP's grid (any root/size with `ω` divisible by `s` works), and the
//! auxiliary memory is one `f64` table per channel instead of per-level
//! coefficient grids.
//!
//! The output is verified identical to the naive and DP algorithms in the
//! tests below; the `bench` crate's `ablation_integral` harness measures
//! the speedup.

use crate::haar2d;
use crate::sliding::{normalize_signature_matrix, SlidingParams, WindowSignature};
use crate::{Result, WaveletError};

/// A summed-area table over one channel plane: `sat[y][x]` is the sum of
/// all pixels in the rectangle `[0, x) × [0, y)` (exclusive), stored with a
/// one-row/column apron so sums need no boundary cases. Accumulation is in
/// `f64`: megapixel sums of `f32` values lose the low bits otherwise.
#[derive(Debug, Clone)]
pub struct SummedAreaTable {
    width: usize,
    height: usize,
    sums: Vec<f64>,
}

impl SummedAreaTable {
    /// Builds the table in one pass, `O(width × height)`.
    pub fn build(plane: &[f32], width: usize, height: usize) -> Self {
        debug_assert_eq!(plane.len(), width * height);
        let stride = width + 1;
        let mut sums = vec![0.0f64; stride * (height + 1)];
        for y in 0..height {
            let mut row = 0.0f64;
            for x in 0..width {
                row += plane[y * width + x] as f64;
                sums[(y + 1) * stride + (x + 1)] = sums[y * stride + (x + 1)] + row;
            }
        }
        Self { width, height, sums }
    }

    /// Sum of the pixel rectangle `[x0, x1) × [y0, y1)` in O(1).
    #[inline]
    pub fn rect_sum(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> f64 {
        debug_assert!(x0 <= x1 && x1 <= self.width && y0 <= y1 && y1 <= self.height);
        let s = self.width + 1;
        self.sums[y1 * s + x1] + self.sums[y0 * s + x0]
            - self.sums[y0 * s + x1]
            - self.sums[y1 * s + x0]
    }

    /// Mean of the pixel rectangle `[x0, x1) × [y0, y1)`.
    #[inline]
    pub fn rect_mean(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> f32 {
        let n = ((x1 - x0) * (y1 - y0)) as f64;
        (self.rect_sum(x0, y0, x1, y1) / n) as f32
    }
}

/// Computes the same signatures as [`super::compute_signatures`] via
/// summed-area tables. Output order and values match the DP and naive
/// algorithms exactly (up to `f32` rounding).
pub fn compute_signatures_integral(
    planes: &[&[f32]],
    width: usize,
    height: usize,
    params: &SlidingParams,
) -> Result<Vec<WindowSignature>> {
    params.validate()?;
    if planes.is_empty() {
        return Err(WaveletError::BadParams("no channel planes supplied".into()));
    }
    for p in planes {
        if p.len() != width * height {
            return Err(WaveletError::NotSquare { width, height: p.len() / width.max(1) });
        }
    }
    if width < params.omega_min || height < params.omega_min {
        return Err(WaveletError::ImageTooSmall { width, height, omega_min: params.omega_min });
    }

    let tables: Vec<SummedAreaTable> =
        planes.iter().map(|p| SummedAreaTable::build(p, width, height)).collect();
    let s = params.s;
    let mut out = Vec::with_capacity(params.total_windows(width, height));
    let mut avg = vec![0.0f32; s * s];
    let mut omega = params.omega_min;
    while omega <= params.omega_max {
        if omega > width || omega > height {
            break;
        }
        let dist = params.dist(omega);
        let block = omega / s; // s divides ω: both are powers of two, s ≤ ω
        let mut y = 0;
        while y + omega <= height {
            let mut x = 0;
            while x + omega <= width {
                let mut coeffs = Vec::with_capacity(params.signature_dims(planes.len()));
                for table in &tables {
                    // s×s box averages of the window, each O(1).
                    for by in 0..s {
                        for bx in 0..s {
                            avg[by * s + bx] = table.rect_mean(
                                x + bx * block,
                                y + by * block,
                                x + (bx + 1) * block,
                                y + (by + 1) * block,
                            );
                        }
                    }
                    let mut sig = haar2d::nonstandard_forward(&avg, s)?;
                    normalize_signature_matrix(&mut sig, s);
                    coeffs.extend_from_slice(&sig);
                }
                out.push(WindowSignature { x, y, omega, coeffs });
                x += dist;
            }
            y += dist;
        }
        omega *= 2;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sliding::{compute_signatures, compute_signatures_naive};

    fn demo_plane(width: usize, height: usize, salt: usize) -> Vec<f32> {
        (0..width * height).map(|i| ((i * 29 + salt * 17 + 3) % 23) as f32 / 23.0).collect()
    }

    #[test]
    fn sat_rect_sums_match_brute_force() {
        let (w, h) = (7, 5);
        let plane = demo_plane(w, h, 0);
        let sat = SummedAreaTable::build(&plane, w, h);
        for (x0, y0, x1, y1) in [(0, 0, 7, 5), (0, 0, 1, 1), (2, 1, 6, 4), (3, 3, 3, 5), (6, 0, 7, 5)] {
            let mut want = 0.0f64;
            for y in y0..y1 {
                for x in x0..x1 {
                    want += plane[y * w + x] as f64;
                }
            }
            let got = sat.rect_sum(x0, y0, x1, y1);
            assert!((got - want).abs() < 1e-9, "({x0},{y0})-({x1},{y1}): {got} vs {want}");
        }
    }

    #[test]
    fn empty_rect_sums_to_zero() {
        let plane = demo_plane(4, 4, 1);
        let sat = SummedAreaTable::build(&plane, 4, 4);
        assert_eq!(sat.rect_sum(2, 2, 2, 2), 0.0);
        assert_eq!(sat.rect_sum(0, 3, 4, 3), 0.0);
    }

    #[test]
    fn integral_matches_naive_and_dp() {
        let plane = demo_plane(32, 24, 2);
        let params = SlidingParams { s: 2, omega_min: 4, omega_max: 16, stride: 4 };
        let integral = compute_signatures_integral(&[&plane], 32, 24, &params).unwrap();
        let naive = compute_signatures_naive(&[&plane], 32, 24, &params).unwrap();
        let dp = compute_signatures(&[&plane], 32, 24, &params).unwrap();
        assert_eq!(integral.len(), naive.len());
        assert_eq!(integral.len(), dp.len());
        for ((a, b), c) in integral.iter().zip(&naive).zip(&dp) {
            assert_eq!((a.x, a.y, a.omega), (b.x, b.y, b.omega));
            for ((x, y), z) in a.coeffs.iter().zip(&b.coeffs).zip(&c.coeffs) {
                assert!((x - y).abs() < 1e-4, "integral vs naive: {x} vs {y}");
                assert!((x - z).abs() < 1e-4, "integral vs dp: {x} vs {z}");
            }
        }
    }

    #[test]
    fn integral_matches_naive_multichannel_large_s() {
        let a = demo_plane(16, 16, 3);
        let b = demo_plane(16, 16, 4);
        let params = SlidingParams { s: 8, omega_min: 8, omega_max: 16, stride: 2 };
        let integral = compute_signatures_integral(&[&a, &b], 16, 16, &params).unwrap();
        let naive = compute_signatures_naive(&[&a, &b], 16, 16, &params).unwrap();
        assert_eq!(integral.len(), naive.len());
        for (x, y) in integral.iter().zip(&naive) {
            for (c, d) in x.coeffs.iter().zip(&y.coeffs) {
                assert!((c - d).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn rejects_bad_inputs_like_the_others() {
        let plane = demo_plane(4, 4, 5);
        let params = SlidingParams { s: 2, omega_min: 8, omega_max: 8, stride: 1 };
        assert!(matches!(
            compute_signatures_integral(&[&plane], 4, 4, &params),
            Err(WaveletError::ImageTooSmall { .. })
        ));
        assert!(compute_signatures_integral(&[], 4, 4, &params).is_err());
    }

    #[test]
    fn f64_accumulation_handles_large_planes() {
        // A constant plane whose f32 prefix sums would drift; means must
        // still be exact.
        let (w, h) = (512, 256);
        let plane = vec![0.1f32; w * h];
        let sat = SummedAreaTable::build(&plane, w, h);
        let mean = sat.rect_mean(0, 0, w, h);
        assert!((mean - 0.1).abs() < 1e-6, "mean drifted to {mean}");
    }
}
