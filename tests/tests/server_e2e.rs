//! End-to-end proof that the HTTP path is the library path: a live
//! `walrus-server` on an ephemeral port must answer queries **bit-identical**
//! (`f64::to_bits` of every similarity) to an in-process database holding
//! the same images — under concurrency, for deadline-partial answers, and
//! again after the store is shut down and recovered from disk.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use walrus_core::{
    DurableDatabase, Guard, ImageDatabase, QueryOptions, ResultStatus, SharedDurableDatabase,
    SlidingParams, TestClock, WalrusParams,
};
use walrus_imagery::ppm::{parse_netpbm, write_ppm};
use walrus_imagery::{ColorSpace, Image};
use walrus_server::{Client, Server, ServerConfig};

const NUM_IMAGES: usize = 4;
const QUERY_THREADS: usize = 4;

fn test_params() -> WalrusParams {
    WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 8, stride: 4 },
        ..WalrusParams::paper_defaults()
    }
}

/// PPM bytes for a deterministic 16x16 test pattern. Both sides of the
/// comparison decode *these bytes* (write_ppm quantizes to 8 bits, so the
/// float image and its PPM round-trip differ).
fn ppm_bytes(seed: usize) -> Vec<u8> {
    let img = Image::from_fn(16, 16, ColorSpace::Rgb, |x, y, c| {
        ((x / 4 + 2 * (y / 4) + c + seed) % 5) as f32 / 4.0
    })
    .unwrap();
    let mut buf = Vec::new();
    write_ppm(&img, &mut buf).unwrap();
    buf
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("walrus_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Extracts every `"key":<integer>` occurrence, in order.
fn extract_ints(text: &str, key: &str) -> Vec<u64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if let Ok(v) = digits.parse() {
            out.push(v);
        }
    }
    out
}

/// `(image_id, similarity_bits)` pairs from a ranked source, the common
/// currency of every comparison below.
fn reference_ranking(db: &ImageDatabase, query: &Image, k: usize) -> Vec<(u64, u64)> {
    let opts = QueryOptions { k: Some(k), ..QueryOptions::default() };
    let outcome = db.query_with_options_guarded(query, &opts, &Guard::none()).unwrap();
    assert_eq!(outcome.status, ResultStatus::Complete);
    outcome
        .matches
        .iter()
        .map(|m| (m.image_id as u64, m.similarity.to_bits()))
        .collect()
}

fn http_ranking(body: &str) -> Vec<(u64, u64)> {
    let ids = extract_ints(body, "id");
    let bits = extract_ints(body, "similarity_bits");
    assert_eq!(ids.len(), bits.len(), "malformed response: {body}");
    ids.into_iter().zip(bits).collect()
}

#[test]
fn http_answers_are_bit_identical_to_in_process_and_survive_recovery() {
    let dir = tmp_dir("main");
    let images: Vec<Vec<u8>> = (0..NUM_IMAGES).map(ppm_bytes).collect();

    // In-process reference database, built from the same decoded bytes in
    // the same order.
    let mut reference = ImageDatabase::new(test_params()).unwrap();
    for (i, bytes) in images.iter().enumerate() {
        let decoded = parse_netpbm(bytes).unwrap();
        let id = reference.insert_image(&format!("img-{i}"), &decoded).unwrap();
        assert_eq!(id, i);
    }

    // Live server over a fresh durable store.
    let (store, _) = DurableDatabase::open(&dir, test_params()).unwrap();
    // Thread-per-connection: a keep-alive connection holds its worker while
    // open, so the pool must cover every concurrent connection this test
    // makes (1 ingest client + QUERY_THREADS query clients) regardless of
    // the machine's core count.
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: QUERY_THREADS + 2,
        queue_depth: 8,
        drain_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    let handle = Server::start(config, SharedDurableDatabase::new(store)).unwrap();
    let addr = handle.addr();

    // Sequential HTTP ingest pins the id order to the reference's.
    let mut client = Client::connect(addr).unwrap();
    for (i, bytes) in images.iter().enumerate() {
        let resp = client
            .request("POST", &format!("/ingest?name=img-{i}"), bytes)
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert!(resp.text().contains(&format!("\"ids\":[{i}]")), "{}", resp.text());
    }

    // Concurrent queries from N threads, each with its own connection, must
    // all match the single-threaded in-process answer bit for bit.
    let expected: Vec<Vec<(u64, u64)>> = images
        .iter()
        .map(|bytes| reference_ranking(&reference, &parse_netpbm(bytes).unwrap(), NUM_IMAGES))
        .collect();
    let images = Arc::new(images);
    let expected = Arc::new(expected);
    let mut workers = Vec::new();
    for t in 0..QUERY_THREADS {
        let images = Arc::clone(&images);
        let expected = Arc::clone(&expected);
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            for round in 0..3 {
                let which = (t + round) % NUM_IMAGES;
                let resp = client
                    .request("POST", &format!("/query?k={NUM_IMAGES}"), &images[which])
                    .unwrap();
                assert_eq!(resp.status, 200, "{}", resp.text());
                let body = resp.text();
                assert!(body.contains("\"status\":\"complete\""), "{body}");
                assert_eq!(
                    http_ranking(&body),
                    expected[which],
                    "thread {t} round {round} diverged from in-process"
                );
            }
        }));
    }
    for w in workers {
        w.join().expect("query thread panicked");
    }

    // Deadline-partial parity: timeout_ms=0 expires before extraction, so
    // both paths must produce the same empty partial answer.
    let resp = client
        .request("POST", "/query?timeout_ms=0", &images[0])
        .unwrap();
    assert_eq!(resp.status, 206, "{}", resp.text());
    assert!(resp.text().contains("\"status\":\"partial\""), "{}", resp.text());
    assert!(resp.text().contains("\"count\":0"), "{}", resp.text());
    let in_process = reference
        .query_with_options_guarded(
            &parse_netpbm(&images[0]).unwrap(),
            &QueryOptions::default(),
            &Guard::with_timeout(Duration::from_millis(0)),
        )
        .unwrap();
    assert_eq!(in_process.status, ResultStatus::Partial);
    assert!(in_process.matches.is_empty());

    // Graceful shutdown, then recover the store from disk: the reopened
    // database must serve the same answers the HTTP path served.
    handle.shutdown().unwrap();
    let (recovered, report) = DurableDatabase::open(&dir, test_params()).unwrap();
    assert_eq!(recovered.len(), NUM_IMAGES);
    assert_eq!(
        report.records_replayed, 0,
        "shutdown checkpoint should leave nothing to replay"
    );
    for (which, bytes) in images.iter().enumerate() {
        let query = parse_netpbm(bytes).unwrap();
        let opts = QueryOptions { k: Some(NUM_IMAGES), ..QueryOptions::default() };
        let outcome = recovered
            .query_with_options_guarded(&query, &opts, &Guard::none())
            .unwrap();
        let got: Vec<(u64, u64)> = outcome
            .matches
            .iter()
            .map(|m| (m.image_id as u64, m.similarity.to_bits()))
            .collect();
        assert_eq!(got, expected[which], "recovered store diverged for query {which}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn server_timing_runs_on_the_injected_clock() {
    // Everything time-shaped in the server — uptime, request deadlines —
    // is measured on `ServerConfig::clock`, so a TestClock makes the
    // timing assertions below exact and sleep-free. (The suites' remaining
    // wall-clock timing coverage lives in the tests above, which run on
    // the default monotonic clock.)
    let dir = tmp_dir("testclock");
    let (store, _) = DurableDatabase::open(&dir, test_params()).unwrap();
    let clock = TestClock::new();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        clock: clock.clone(),
        ..ServerConfig::default()
    };
    let handle = Server::start(config, SharedDurableDatabase::new(store)).unwrap();
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();

    // Uptime is frozen at 0 until the clock is advanced, then reads the
    // advance exactly — no "roughly n seconds" margins.
    let resp = client.request("GET", "/metrics", &[]).unwrap();
    assert!(resp.text().contains("walrus_uptime_seconds 0\n"), "{}", resp.text());
    clock.advance(Duration::from_secs(90));
    let resp = client.request("GET", "/metrics", &[]).unwrap();
    assert!(resp.text().contains("walrus_uptime_seconds 90\n"), "{}", resp.text());

    // Request deadlines are armed on the same clock: `timeout_ms=0` is
    // expired at admission and degrades to 206 Partial in zero wall time.
    let resp = client.request("POST", "/query?timeout_ms=0", &ppm_bytes(0)).unwrap();
    assert_eq!(resp.status, 206, "{}", resp.text());
    assert!(resp.text().contains("\"status\":\"partial\""), "{}", resp.text());

    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overload_sheds_with_503_not_collapse() {
    // A tiny pool with a tiny queue: blast connections and require that
    // every one either gets served or gets an explicit 503 — and that the
    // server still works afterwards.
    let dir = tmp_dir("overload");
    let (store, _) = DurableDatabase::open(&dir, test_params()).unwrap();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let handle = Server::start(config, SharedDurableDatabase::new(store)).unwrap();
    let addr = handle.addr();

    let mut workers = Vec::new();
    for _ in 0..16 {
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).ok()?;
            let resp = client.request("GET", "/healthz", &[]).ok()?;
            Some(resp.status)
        }));
    }
    let mut served = 0;
    let mut shed = 0;
    for w in workers {
        match w.join().expect("client thread panicked") {
            Some(200) => served += 1,
            Some(503) | None => shed += 1,
            Some(other) => panic!("unexpected status {other}"),
        }
    }
    assert!(served >= 1, "nothing was served (served={served}, shed={shed})");
    // Afterwards the server must be fully responsive again.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.request("GET", "/healthz", &[]).unwrap().status, 200);
    handle.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
