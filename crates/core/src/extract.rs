//! Region extraction: image → sliding-window signatures → BIRCH clusters →
//! regions with bitmaps (paper §5.1 steps 1–2).

use crate::params::WalrusParams;
use crate::region::Region;
use crate::{bitmap::RegionBitmap, Result, WalrusError};
use walrus_guard::Guard;
use walrus_imagery::Image;
use walrus_wavelet::sliding;

/// Extracts the regions of `image` under `params`.
///
/// The image is converted to `params.color_space`, swept with the
/// dynamic-programming sliding-window algorithm, and the window signatures
/// are pre-clustered with radius threshold `ε_c`. Each non-empty cluster
/// becomes a [`Region`] whose bitmap marks the pixels covered by the
/// cluster's member windows.
///
/// The number of regions "typically increases with image complexity"
/// (paper §5.3) and decreases with `ε_c` (§6.6) — both verified in tests.
pub fn extract_regions(image: &Image, params: &WalrusParams) -> Result<Vec<Region>> {
    extract_regions_with_threads(image, params, params.threads)
}

/// [`extract_regions`] with an explicit worker count for the sliding-window
/// sweep, overriding `params.threads`. Batch ingest parallelizes *across*
/// images and calls this with `threads = 1` per image so worker counts do
/// not multiply; single-image callers use [`extract_regions`], which honors
/// the params knob. Results are byte-identical for every thread count.
pub fn extract_regions_with_threads(
    image: &Image,
    params: &WalrusParams,
    threads: usize,
) -> Result<Vec<Region>> {
    extract_regions_guarded(image, params, threads, &Guard::none())
}

/// [`extract_regions_with_threads`] under a lifecycle [`Guard`]: the sweep
/// and the clustering poll the guard cooperatively (stopping mid-image on
/// cancellation or deadline expiry), and the request budgets of
/// `params.budgets` are enforced — the pixel budget before any per-window
/// work, the region budget after clustering.
pub fn extract_regions_guarded(
    image: &Image,
    params: &WalrusParams,
    threads: usize,
    guard: &Guard,
) -> Result<Vec<Region>> {
    params.validate()?;
    let pixels = image.width().saturating_mul(image.height());
    if pixels > params.budgets.max_decoded_pixels {
        return Err(WalrusError::BudgetExceeded {
            what: "decoded pixels",
            used: pixels,
            limit: params.budgets.max_decoded_pixels,
        });
    }
    let decode_span = guard.span("decode");
    let converted = image.to_space(params.color_space)?;
    if let Some(s) = &decode_span {
        s.add("pixels", pixels as u64);
        s.add("channels", converted.channels().len() as u64);
    }
    drop(decode_span);

    let wavelet_span = guard.span("wavelet");
    let planes: Vec<&[f32]> = converted.channels().iter().map(|c| c.as_slice()).collect();
    let signatures = sliding::compute_signatures_guarded(
        &planes,
        converted.width(),
        converted.height(),
        &params.sliding,
        threads,
        guard,
    )?;
    if let Some(s) = &wavelet_span {
        s.add("windows", signatures.len() as u64);
    }
    drop(wavelet_span);
    if signatures.is_empty() {
        return Err(WalrusError::Wavelet(walrus_wavelet::WaveletError::ImageTooSmall {
            width: image.width(),
            height: image.height(),
            omega_min: params.sliding.omega_min,
        }));
    }

    let birch_span = guard.span("birch");
    let points: Vec<Vec<f32>> = signatures.iter().map(|s| s.coeffs.clone()).collect();
    let clustering = walrus_birch::precluster_guarded(
        &points,
        params.cluster_epsilon,
        params.max_regions_per_image,
        guard,
    )?;
    if let Some(s) = &birch_span {
        s.add("clusters", clustering.clusters.len() as u64);
        s.add("cf_splits", clustering.splits as u64);
        s.add("cf_rebuilds", clustering.rebuilds as u64);
    }
    drop(birch_span);
    if clustering.clusters.len() > params.budgets.max_regions_per_image {
        return Err(WalrusError::BudgetExceeded {
            what: "regions per image",
            used: clustering.clusters.len(),
            limit: params.budgets.max_regions_per_image,
        });
    }

    let mut regions = Vec::with_capacity(clustering.clusters.len());
    for cluster in &clustering.clusters {
        let mut bitmap = RegionBitmap::new(image.width(), image.height(), params.bitmap_grid);
        for &m in &cluster.members {
            let w = &signatures[m];
            bitmap.mark_window(w.x, w.y, w.omega, w.omega);
        }
        regions.push(Region::new(
            cluster.centroid(),
            cluster.bbox_min.clone(),
            cluster.bbox_max.clone(),
            bitmap,
            cluster.members.len(),
        ));
    }
    Ok(regions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use walrus_imagery::synth::scene::{Scene, SceneObject};
    use walrus_imagery::synth::shapes::Shape;
    use walrus_imagery::synth::texture::{Rgb, Texture};
    use walrus_imagery::ColorSpace;

    fn small_params() -> WalrusParams {
        WalrusParams {
            sliding: walrus_wavelet::SlidingParams { s: 2, omega_min: 8, omega_max: 16, stride: 4 },
            ..WalrusParams::paper_defaults()
        }
    }

    fn two_tone_image() -> Image {
        // Left half red, right half blue: two clearly separable regions.
        Scene::new(Texture::Solid(Rgb(0.9, 0.1, 0.1)))
            .with(SceneObject::new(
                Shape::Rect { hx: 1.0, hy: 1.0 },
                Texture::Solid(Rgb(0.1, 0.1, 0.9)),
                (0.75, 0.5),
                0.55,
            ))
            .render(64, 64)
            .unwrap()
    }

    #[test]
    fn uniform_image_yields_one_region() {
        let img = Image::from_fn(64, 64, ColorSpace::Rgb, |_, _, _| 0.5).unwrap();
        let regions = extract_regions(&img, &small_params()).unwrap();
        assert_eq!(regions.len(), 1);
        // The single region covers the whole image.
        assert_eq!(regions[0].area(), 64 * 64);
        assert!(regions[0].window_count > 0);
    }

    #[test]
    fn two_tone_image_yields_multiple_regions() {
        let regions = extract_regions(&two_tone_image(), &small_params()).unwrap();
        assert!(regions.len() >= 2, "expected >= 2 regions, got {}", regions.len());
        // Every region has a sane signature and non-empty bitmap.
        for r in &regions {
            assert_eq!(r.dims(), 12);
            assert!(!r.bitmap.is_empty());
            assert!(r.window_count >= 1);
            for d in 0..r.dims() {
                assert!(r.bbox_min[d] <= r.centroid[d] + 1e-6);
                assert!(r.centroid[d] <= r.bbox_max[d] + 1e-6);
            }
        }
    }

    #[test]
    fn window_counts_conserve_total() {
        let params = small_params();
        let img = two_tone_image();
        let regions = extract_regions(&img, &params).unwrap();
        let total: usize = regions.iter().map(|r| r.window_count).sum();
        assert_eq!(total, params.sliding.total_windows(64, 64));
    }

    #[test]
    fn regions_decrease_with_cluster_epsilon() {
        // §6.6's monotone trend.
        let img = two_tone_image();
        let mut tight = small_params();
        tight.cluster_epsilon = 0.01;
        let mut loose = small_params();
        loose.cluster_epsilon = 0.5;
        let n_tight = extract_regions(&img, &tight).unwrap().len();
        let n_loose = extract_regions(&img, &loose).unwrap().len();
        assert!(
            n_tight >= n_loose,
            "tight ε_c gave {n_tight} regions, loose gave {n_loose}"
        );
        assert_eq!(n_loose, 1, "ε_c = 0.5 should merge everything");
    }

    #[test]
    fn max_regions_budget_respected() {
        let img = two_tone_image();
        let mut p = small_params();
        p.cluster_epsilon = 0.0; // would explode without a budget
        p.max_regions_per_image = Some(8);
        let regions = extract_regions(&img, &p).unwrap();
        assert!(regions.len() <= 8, "got {} regions", regions.len());
    }

    #[test]
    fn too_small_image_rejected() {
        let img = Image::zeros(4, 4, ColorSpace::Rgb).unwrap();
        assert!(extract_regions(&img, &small_params()).is_err());
    }

    #[test]
    fn extraction_is_deterministic() {
        let img = two_tone_image();
        let a = extract_regions(&img, &small_params()).unwrap();
        let b = extract_regions(&img, &small_params()).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.centroid, y.centroid);
            assert_eq!(x.bitmap, y.bitmap);
        }
    }

    #[test]
    fn pixel_budget_enforced_before_extraction() {
        let img = two_tone_image();
        let mut p = small_params();
        p.budgets.max_decoded_pixels = 64 * 64 - 1;
        match extract_regions(&img, &p) {
            Err(WalrusError::BudgetExceeded { what, used, limit }) => {
                assert_eq!(what, "decoded pixels");
                assert_eq!(used, 64 * 64);
                assert_eq!(limit, 64 * 64 - 1);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        p.budgets.max_decoded_pixels = 64 * 64;
        extract_regions(&img, &p).unwrap();
    }

    #[test]
    fn region_budget_enforced_after_clustering() {
        let img = two_tone_image();
        let mut p = small_params();
        let n = extract_regions(&img, &p).unwrap().len();
        assert!(n >= 2);
        p.budgets.max_regions_per_image = n - 1;
        match extract_regions(&img, &p) {
            Err(WalrusError::BudgetExceeded { what, used, limit }) => {
                assert_eq!(what, "regions per image");
                assert_eq!(used, n);
                assert_eq!(limit, n - 1);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn guarded_extraction_matches_and_interrupts() {
        let img = two_tone_image();
        let p = small_params();
        let plain = extract_regions(&img, &p).unwrap();
        let guarded = extract_regions_guarded(&img, &p, 1, &Guard::none()).unwrap();
        assert_eq!(plain.len(), guarded.len());
        for (a, b) in plain.iter().zip(&guarded) {
            assert_eq!(a.centroid, b.centroid);
            assert_eq!(a.bitmap, b.bitmap);
        }

        // A pre-tripped cancel token stops extraction with the interrupt
        // surfaced as the core-level error, not a wrapped wavelet error.
        let token = walrus_guard::CancelToken::new();
        token.cancel();
        let guard = Guard::with_token(token);
        match extract_regions_guarded(&img, &p, 1, &guard) {
            Err(WalrusError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn union_of_region_bitmaps_covers_image() {
        // Every window lands in some cluster, and windows tile the image
        // (stride ≤ ω), so the union of region bitmaps is full coverage.
        let img = two_tone_image();
        let regions = extract_regions(&img, &small_params()).unwrap();
        let mut acc = RegionBitmap::new(64, 64, 16);
        for r in &regions {
            acc.union_in_place(&r.bitmap);
        }
        assert_eq!(acc.area(), 64 * 64);
    }
}
