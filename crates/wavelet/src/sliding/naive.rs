//! The naive sliding-window signature algorithm.
//!
//! Each window is cropped from the raw pixels and transformed independently
//! with the full `computeWavelet` procedure — `O(ω²)` work per window and
//! `O(N·ω²_max)` overall (paper §5.2, "Discussion"). Kept as the baseline
//! for the Figure 6 experiments and as the reference implementation the DP
//! algorithm is verified against.

use crate::haar2d;
use crate::sliding::{normalize_signature_matrix, SlidingParams, WindowSignature};
use crate::{Result, WaveletError};

/// Computes signatures for all sliding windows of `planes` (one slice per
/// color channel, each `width × height` row-major) using the naive
/// per-window transform. Output order: window size ascending, then row-major
/// root position.
pub fn compute_signatures_naive(
    planes: &[&[f32]],
    width: usize,
    height: usize,
    params: &SlidingParams,
) -> Result<Vec<WindowSignature>> {
    params.validate()?;
    if planes.is_empty() {
        return Err(WaveletError::BadParams("no channel planes supplied".into()));
    }
    for p in planes {
        if p.len() != width * height {
            return Err(WaveletError::NotSquare { width, height: p.len() / width.max(1) });
        }
    }
    if width < params.omega_min || height < params.omega_min {
        return Err(WaveletError::ImageTooSmall { width, height, omega_min: params.omega_min });
    }

    let s = params.s;
    let mut out = Vec::with_capacity(params.total_windows(width, height));
    let mut omega = params.omega_min;
    let mut window = Vec::new();
    while omega <= params.omega_max {
        if omega > width || omega > height {
            break;
        }
        let dist = params.dist(omega);
        let mut y = 0;
        while y + omega <= height {
            let mut x = 0;
            while x + omega <= width {
                let mut coeffs = Vec::with_capacity(params.signature_dims(planes.len()));
                for plane in planes {
                    crop_into(plane, width, x, y, omega, &mut window);
                    // Full O(ω²) transform of the window, then keep the s×s
                    // lowest band.
                    let w = haar2d::nonstandard_forward(&window, omega)?;
                    let mut sig = haar2d::corner(&w, omega, s);
                    normalize_signature_matrix(&mut sig, s);
                    coeffs.extend_from_slice(&sig);
                }
                out.push(WindowSignature { x, y, omega, coeffs });
                x += dist;
            }
            y += dist;
        }
        omega *= 2;
    }
    Ok(out)
}

/// Copies the `omega × omega` window rooted at `(x, y)` out of a row-major
/// plane into `dst` (cleared first).
fn crop_into(plane: &[f32], width: usize, x: usize, y: usize, omega: usize, dst: &mut Vec<f32>) {
    dst.clear();
    dst.reserve(omega * omega);
    for row in y..y + omega {
        dst.extend_from_slice(&plane[row * width + x..row * width + x + omega]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_plane(width: usize, height: usize) -> Vec<f32> {
        (0..width * height).map(|i| ((i * 31 + 7) % 19) as f32 / 19.0).collect()
    }

    #[test]
    fn produces_expected_window_count() {
        let plane = demo_plane(16, 16);
        let params = SlidingParams { s: 2, omega_min: 4, omega_max: 8, stride: 4 };
        let sigs = compute_signatures_naive(&[&plane], 16, 16, &params).unwrap();
        assert_eq!(sigs.len(), params.total_windows(16, 16));
    }

    #[test]
    fn signature_of_constant_window_is_dc_only() {
        let plane = vec![0.5f32; 64];
        let params = SlidingParams { s: 2, omega_min: 4, omega_max: 4, stride: 4 };
        let sigs = compute_signatures_naive(&[&plane], 8, 8, &params).unwrap();
        for sig in sigs {
            assert!((sig.coeffs[0] - 0.5).abs() < 1e-6);
            assert!(sig.coeffs[1..].iter().all(|&c| c.abs() < 1e-6));
        }
    }

    #[test]
    fn first_coefficient_is_window_mean() {
        let plane = demo_plane(8, 8);
        let params = SlidingParams { s: 2, omega_min: 4, omega_max: 4, stride: 4 };
        let sigs = compute_signatures_naive(&[&plane], 8, 8, &params).unwrap();
        for sig in &sigs {
            let mut mean = 0.0;
            for dy in 0..4 {
                for dx in 0..4 {
                    mean += plane[(sig.y + dy) * 8 + sig.x + dx];
                }
            }
            mean /= 16.0;
            assert!((sig.coeffs[0] - mean).abs() < 1e-5);
        }
    }

    #[test]
    fn multi_channel_concatenates() {
        let a = demo_plane(8, 8);
        let b: Vec<f32> = a.iter().map(|v| 1.0 - v).collect();
        let params = SlidingParams { s: 2, omega_min: 8, omega_max: 8, stride: 8 };
        let sigs = compute_signatures_naive(&[&a, &b], 8, 8, &params).unwrap();
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].coeffs.len(), 8);
        // Channel means are complementary.
        assert!((sigs[0].coeffs[0] + sigs[0].coeffs[4] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn rejects_undersized_image() {
        let plane = demo_plane(4, 4);
        let params = SlidingParams { s: 2, omega_min: 8, omega_max: 8, stride: 1 };
        assert!(matches!(
            compute_signatures_naive(&[&plane], 4, 4, &params),
            Err(WaveletError::ImageTooSmall { .. })
        ));
    }

    #[test]
    fn rejects_empty_planes_and_bad_lengths() {
        let params = SlidingParams { s: 2, omega_min: 4, omega_max: 4, stride: 1 };
        assert!(compute_signatures_naive(&[], 8, 8, &params).is_err());
        let short = vec![0.0f32; 10];
        assert!(compute_signatures_naive(&[&short], 8, 8, &params).is_err());
    }

    #[test]
    fn non_square_images_supported() {
        let plane = demo_plane(16, 8);
        let params = SlidingParams { s: 2, omega_min: 4, omega_max: 8, stride: 4 };
        let sigs = compute_signatures_naive(&[&plane], 16, 8, &params).unwrap();
        // ω=4: 4 × 2 roots; ω=8: 3 × 1 roots.
        assert_eq!(sigs.len(), 8 + 3);
        assert!(sigs.iter().all(|s| s.x + s.omega <= 16 && s.y + s.omega <= 8));
    }
}
