//! **Ablation A1** — centroid vs bounding-box region signatures
//! (Definition 4.1 / §5.3 offer both without choosing experimentally;
//! §6.4 uses centroids).
//!
//! Bounding boxes are more permissive: a region matches whenever its box,
//! extended by ε, overlaps the query's box — so selectivity should be
//! looser (more regions retrieved) at equal ε, trading precision for
//! recall.
//!
//! Run: `cargo run --release -p walrus-bench --bin ablation_signature`

use walrus_bench::report::{f3, Table};
use walrus_bench::workloads::{
    build_walrus_db, flower_query, id_of_name, precision_at, retrieval_dataset, retrieval_params,
};
use walrus_bench::{scale, time};
use walrus_core::SignatureKind;

fn main() {
    let dataset = retrieval_dataset(scale());
    let query = flower_query();
    println!(
        "Ablation A1: centroid vs bounding-box region signatures\n\
         database: {} synthetic images\n",
        dataset.len()
    );
    let mut table = Table::new(
        "Signature Kind Ablation",
        &["kind", "avg_regions_retrieved", "distinct_images", "precision_at_14", "query_s"],
    );
    for (label, kind) in
        [("centroid", SignatureKind::Centroid), ("bbox", SignatureKind::BoundingBox)]
    {
        let mut params = retrieval_params();
        params.signature_kind = kind;
        let db = build_walrus_db(&dataset, params);
        let (outcome, secs) = time(|| db.query(&query).expect("query succeeds"));
        let ids: Vec<usize> = outcome
            .matches
            .iter()
            .take(14)
            .filter_map(|r| id_of_name(&dataset, &r.name))
            .collect();
        table.row(&[
            label.to_string(),
            f3(outcome.stats.avg_regions_per_query_region),
            outcome.stats.distinct_images.to_string(),
            f3(precision_at(&dataset, &ids, 14)),
            f3(secs),
        ]);
    }
    table.print();
    println!(
        "Expectation: bounding boxes retrieve at least as many regions per\n\
         query region as centroids (they are a superset test at equal ε)."
    );
}
