//! Image regions: the unit of WALRUS similarity.
//!
//! A region is a cluster of sliding windows with similar signatures. It
//! carries: the cluster centroid signature, the bounding box of member
//! signatures (the alternate representation of Definition 4.1), the coarse
//! pixel bitmap of the area its windows cover, and bookkeeping counts.

use crate::bitmap::RegionBitmap;
use crate::params::SignatureKind;
use walrus_rstar::Rect;
use walrus_wavelet::BinarySignature;

/// One extracted region of an image.
#[derive(Debug, Clone)]
pub struct Region {
    /// Cluster centroid in signature space.
    pub centroid: Vec<f32>,
    /// Per-dimension minimum of member signatures.
    pub bbox_min: Vec<f32>,
    /// Per-dimension maximum of member signatures.
    pub bbox_max: Vec<f32>,
    /// Coarse bitmap of pixels covered by the region's member windows.
    pub bitmap: RegionBitmap,
    /// Number of sliding windows in the cluster.
    pub window_count: usize,
    /// 128-bit thermometer code of `[bbox_min, bbox_max]`, used by the
    /// query prefilter. Always equal to
    /// `BinarySignature::from_bbox(&bbox_min, &bbox_max)` — derived by
    /// [`Region::new`] and rebuilt (and verified) on snapshot/WAL load.
    pub signature: BinarySignature,
}

impl Region {
    /// Builds a region, deriving its binary prefilter signature from the
    /// signature bounding box. The only way regions are constructed in the
    /// engine, so `signature` can never drift from the bbox it encodes.
    pub fn new(
        centroid: Vec<f32>,
        bbox_min: Vec<f32>,
        bbox_max: Vec<f32>,
        bitmap: RegionBitmap,
        window_count: usize,
    ) -> Region {
        let signature = BinarySignature::from_bbox(&bbox_min, &bbox_max);
        Region { centroid, bbox_min, bbox_max, bitmap, window_count, signature }
    }

    /// Signature dimensionality.
    pub fn dims(&self) -> usize {
        self.centroid.len()
    }

    /// Pixel area covered by this region (from the coarse bitmap).
    pub fn area(&self) -> usize {
        self.bitmap.area()
    }

    /// The rectangle this region is indexed under: a degenerate point for
    /// centroid signatures, the signature bounding box otherwise.
    pub fn index_rect(&self, kind: SignatureKind) -> Rect {
        match kind {
            SignatureKind::Centroid => {
                Rect::point(&self.centroid).expect("centroid coordinates are finite")
            }
            SignatureKind::BoundingBox => {
                Rect::new(self.bbox_min.clone(), self.bbox_max.clone())
                    .expect("bbox built from finite member signatures")
            }
        }
    }

    /// L2 distance between this region's centroid and another's.
    pub fn centroid_distance(&self, other: &Region) -> f32 {
        walrus_wavelet::sliding::l2_distance(&self.centroid, &other.centroid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_region() -> Region {
        let mut bitmap = RegionBitmap::new(64, 64, 16);
        bitmap.mark_window(0, 0, 32, 32);
        Region::new(
            vec![0.5, 0.1, 0.2, 0.0],
            vec![0.4, 0.05, 0.15, -0.1],
            vec![0.6, 0.15, 0.25, 0.1],
            bitmap,
            9,
        )
    }

    #[test]
    fn area_comes_from_bitmap() {
        let r = demo_region();
        assert_eq!(r.area(), 32 * 32);
        assert_eq!(r.dims(), 4);
    }

    #[test]
    fn centroid_index_rect_is_point() {
        let r = demo_region();
        let rect = r.index_rect(SignatureKind::Centroid);
        assert_eq!(rect.min(), rect.max());
        assert_eq!(rect.min(), r.centroid.as_slice());
    }

    #[test]
    fn bbox_index_rect_spans_members() {
        let r = demo_region();
        let rect = r.index_rect(SignatureKind::BoundingBox);
        assert_eq!(rect.min(), r.bbox_min.as_slice());
        assert_eq!(rect.max(), r.bbox_max.as_slice());
        assert!(rect.area() > 0.0);
    }

    #[test]
    fn constructor_derives_binary_signature() {
        let r = demo_region();
        assert_eq!(r.signature, BinarySignature::from_bbox(&r.bbox_min, &r.bbox_max));
        assert_ne!(r.signature, BinarySignature::default(), "demo bbox must set some bits");
    }

    #[test]
    fn centroid_distance_is_euclidean() {
        let a = demo_region();
        let mut b = demo_region();
        b.centroid = vec![0.5, 0.1, 0.2, 1.0];
        assert!((a.centroid_distance(&b) - 1.0).abs() < 1e-6);
        assert_eq!(a.centroid_distance(&a), 0.0);
    }
}
