//! Golden-trace regression test: a fixed-seed ingest + query must produce a
//! byte-stable span tree — same span names, nesting, and counter values —
//! regardless of worker thread count (the CI matrix runs this under
//! `WALRUS_THREADS=1` and `=4`).
//!
//! Durations are rendered as `0us` because the trace runs on a [`TestClock`]
//! that is never advanced; everything else in the render is engine output,
//! so any drift in pipeline behavior (window counts, cluster counts, index
//! probes, candidate pruning) shows up as a fixture diff.
//!
//! Regenerate after an intentional engine change with:
//! `UPDATE_GOLDEN=1 cargo test -p walrus-integration-tests --test golden_trace`

use std::path::PathBuf;
use std::sync::Arc;

use walrus_core::storage::FaultIo;
use walrus_core::{Guard, ImageDatabase, ShardedStore, TestClock, TraceContext, WalrusParams};
use walrus_imagery::{ColorSpace, Image};
use walrus_wavelet::SlidingParams;

const FIXTURE: &str = "golden_trace.txt";
const SHARDED_FIXTURE: &str = "golden_trace_sharded.txt";
const IMAGES: usize = 16;
/// Pinned shard count for the sharded fixture: the rendered span tree is a
/// function of the store itself, so it is byte-stable no matter what
/// `WALRUS_SHARDS` or `WALRUS_THREADS` the CI matrix sets.
const SHARDS: usize = 4;

fn params() -> WalrusParams {
    WalrusParams {
        sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 8, stride: 4 },
        // Pinned so the rendered prefilter counters don't depend on the
        // WALRUS_PREFILTER environment the CI matrix varies.
        prefilter: Some(true),
        ..WalrusParams::paper_defaults()
    }
}

/// The same deterministic 16×16 block pattern the server e2e suite ingests.
fn seeded_image(seed: usize) -> Image {
    Image::from_fn(16, 16, ColorSpace::Rgb, |x, y, c| {
        ((x / 4 + y / 4 + c + seed) % 4) as f32 / 3.0
    })
    .unwrap()
}

/// Finds the committed fixture by walking up from the current directory —
/// works from the package root (cargo), the workspace root, and detached
/// verification harnesses alike.
fn fixture_path(name: &str) -> Option<PathBuf> {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        for cand in [
            dir.join("fixtures").join(name),
            dir.join("tests").join("fixtures").join(name),
        ] {
            if cand.exists() {
                return Some(cand);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Where to write the fixture when regenerating: the nearest existing
/// `fixtures/` or `tests/fixtures/` directory above the current directory.
fn fixture_write_path(name: &str) -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        for parent in [dir.join("fixtures"), dir.join("tests").join("fixtures")] {
            if parent.is_dir() {
                return parent.join(name);
            }
        }
        if !dir.pop() {
            panic!("no fixtures/ directory found above the current directory");
        }
    }
}

/// Compares `rendered` against the committed fixture `name`, or rewrites it
/// under `UPDATE_GOLDEN=1`.
fn assert_matches_fixture(rendered: &str, name: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = fixture_write_path(name);
        std::fs::write(&path, rendered).unwrap();
        println!("wrote {}", path.display());
        return;
    }
    let path = fixture_path(name).unwrap_or_else(|| {
        panic!("fixture {name} not found; run once with UPDATE_GOLDEN=1 to create it")
    });
    let expected = std::fs::read_to_string(&path).unwrap();
    assert_eq!(
        rendered,
        expected,
        "trace drifted from {} — if the pipeline change is intentional, \
         regenerate with UPDATE_GOLDEN=1",
        path.display()
    );
}

/// Runs the seeded ingest + query under a frozen [`TestClock`] and returns
/// the concatenated rendered traces.
fn golden_render() -> String {
    let clock = TestClock::new();
    let mut db = ImageDatabase::new(params()).unwrap();

    let images: Vec<(String, Image)> =
        (0..IMAGES).map(|seed| (format!("img-{seed}"), seeded_image(seed))).collect();
    let items: Vec<(&str, &Image)> =
        images.iter().map(|(name, img)| (name.as_str(), img)).collect();

    let ingest_trace = TraceContext::new(clock.clone());
    let guard = Guard::none().tracing(ingest_trace.clone());
    db.insert_images_batch_guarded(&items, &guard).unwrap();

    let query_trace = TraceContext::new(clock.clone());
    let guard = Guard::none().tracing(query_trace.clone());
    let outcome = db.query_guarded(&seeded_image(0), &guard).unwrap();
    assert!(!outcome.matches.is_empty(), "the seeded query must match itself");

    format!("# ingest\n{}# query\n{}", ingest_trace.report().render(), query_trace.report().render())
}

#[test]
fn golden_trace_is_byte_stable() {
    let rendered = golden_render();

    // Structural sanity first, so a broken pipeline fails with a readable
    // message instead of a wall-of-text fixture diff.
    for span in
        ["ingest", "extract", "index", "query", "decode", "wavelet", "birch", "rstar_probe", "match"]
    {
        assert!(rendered.contains(span), "span {span:?} missing from:\n{rendered}");
    }
    assert!(rendered.contains("images=16"), "{rendered}");
    // Frozen clock ⇒ all durations render as zero.
    assert!(!rendered.lines().any(|l| l.contains("us") && !l.contains(" 0us")), "{rendered}");

    assert_matches_fixture(&rendered, FIXTURE);
}

/// The sharded counterpart: same seeded ingest + query against a 4-shard
/// [`ShardedStore`] over a deterministic in-memory filesystem. The query
/// trace gains one `shard_probe` child span per shard; everything else
/// (per-stage counters, nesting) must line up with the monolithic pipeline.
fn golden_sharded_render() -> String {
    let clock = TestClock::new();
    let io = Arc::new(FaultIo::new());
    let (store, _) = ShardedStore::open_with(io, "db", params(), SHARDS).unwrap();

    let images: Vec<(String, Image)> =
        (0..IMAGES).map(|seed| (format!("img-{seed}"), seeded_image(seed))).collect();
    let items: Vec<(&str, &Image)> =
        images.iter().map(|(name, img)| (name.as_str(), img)).collect();

    let ingest_trace = TraceContext::new(clock.clone());
    let guard = Guard::none().tracing(ingest_trace.clone());
    store.insert_images_batch_guarded(&items, &guard).unwrap();

    let query_trace = TraceContext::new(clock.clone());
    let guard = Guard::none().tracing(query_trace.clone());
    let outcome = store.query_guarded(&seeded_image(0), &guard).unwrap();
    assert!(!outcome.matches.is_empty(), "the seeded query must match itself");

    format!("# ingest\n{}# query\n{}", ingest_trace.report().render(), query_trace.report().render())
}

#[test]
fn golden_sharded_trace_is_byte_stable() {
    let rendered = golden_sharded_render();

    for span in ["ingest", "extract", "wal_append", "query", "shard_probe", "rstar_probe"] {
        assert!(rendered.contains(span), "span {span:?} missing from:\n{rendered}");
    }
    // Exactly one probe span per shard, regardless of thread count or the
    // WALRUS_SHARDS environment (the store pins its own shard count).
    assert_eq!(
        rendered.matches("shard_probe").count(),
        SHARDS,
        "expected {SHARDS} shard_probe spans:\n{rendered}"
    );
    assert!(!rendered.lines().any(|l| l.contains("us") && !l.contains(" 0us")), "{rendered}");

    assert_matches_fixture(&rendered, SHARDED_FIXTURE);
}

#[test]
fn golden_sharded_trace_is_identical_across_repeat_runs() {
    assert_eq!(golden_sharded_render(), golden_sharded_render());
}

#[test]
fn golden_trace_is_identical_across_repeat_runs() {
    // Same process, two runs: catches nondeterminism (map iteration order,
    // uninitialized counters) without relying on the CI thread matrix.
    assert_eq!(golden_render(), golden_render());
}
