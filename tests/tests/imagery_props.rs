//! Property-based tests for the imagery substrate: color-space round
//! trips, PPM codec round trips, and geometric-operation algebra over
//! arbitrary images.

use proptest::prelude::*;
use walrus_imagery::{color, ops, ppm, ColorSpace, Image};

fn arb_image(max_side: usize) -> impl Strategy<Value = Image> {
    arb_image_min(1, max_side)
}

fn arb_image_min(min_side: usize, max_side: usize) -> impl Strategy<Value = Image> {
    (min_side..=max_side, min_side..=max_side).prop_flat_map(|(w, h)| {
        proptest::collection::vec(0.0f32..=1.0, w * h * 3).prop_map(move |data| {
            Image::from_fn(w, h, ColorSpace::Rgb, |x, y, c| data[(y * w + x) * 3 + c]).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn color_spaces_round_trip(img in arb_image(12)) {
        for space in [ColorSpace::Ycc, ColorSpace::Yiq, ColorSpace::Hsv] {
            let converted = img.to_space(space).unwrap();
            let back = converted.to_space(ColorSpace::Rgb).unwrap();
            for c in 0..3 {
                for (a, b) in back.channel(c).as_slice().iter().zip(img.channel(c).as_slice()) {
                    prop_assert!((a - b).abs() < 2e-3, "{space:?} channel {c}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn luma_is_invariant_across_luma_spaces(img in arb_image(8)) {
        let ycc = img.to_space(ColorSpace::Ycc).unwrap();
        let yiq = img.to_space(ColorSpace::Yiq).unwrap();
        for (a, b) in ycc.channel(0).as_slice().iter().zip(yiq.channel(0).as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn ppm_round_trip_within_quantization(img in arb_image(10)) {
        let mut buf = Vec::new();
        ppm::write_ppm(&img, &mut buf).unwrap();
        let back = ppm::parse_netpbm(&buf).unwrap();
        prop_assert_eq!(back.width(), img.width());
        prop_assert_eq!(back.height(), img.height());
        for c in 0..3 {
            for (a, b) in back.channel(c).as_slice().iter().zip(img.channel(c).as_slice()) {
                prop_assert!((a - b).abs() <= 1.0 / 255.0 + 1e-6);
            }
        }
    }

    #[test]
    fn ppm_parser_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Fuzz the codec: arbitrary bytes must parse or error, not panic.
        let _ = ppm::parse_netpbm(&bytes);
    }

    #[test]
    fn ppm_parser_never_panics_on_header_like_noise(
        tail in proptest::collection::vec(any::<u8>(), 0..64),
        magic in prop::sample::select(vec!["P2", "P3", "P5", "P6"]),
    ) {
        let mut bytes = magic.as_bytes().to_vec();
        bytes.push(b'\n');
        bytes.extend(tail);
        let _ = ppm::parse_netpbm(&bytes);
    }

    #[test]
    fn flips_and_rotations_form_a_group(img in arb_image(9)) {
        prop_assert_eq!(ops::flip_horizontal(&ops::flip_horizontal(&img)), img.clone());
        prop_assert_eq!(ops::flip_vertical(&ops::flip_vertical(&img)), img.clone());
        prop_assert_eq!(ops::rotate180(&ops::rotate180(&img)), img.clone());
        prop_assert_eq!(ops::rotate270(&ops::rotate90(&img)), img.clone());
        prop_assert_eq!(
            ops::rotate90(&ops::rotate90(&img)),
            ops::rotate180(&img)
        );
        // Flips commute with 180° rotation.
        prop_assert_eq!(
            ops::rotate180(&ops::flip_horizontal(&img)),
            ops::flip_vertical(&img)
        );
    }

    #[test]
    fn geometric_ops_preserve_pixel_multiset_mean(img in arb_image(9)) {
        let mean = img.channel(0).mean();
        for transformed in [
            ops::flip_horizontal(&img),
            ops::rotate90(&img),
            ops::rotate180(&img),
            ops::rotate270(&img),
        ] {
            prop_assert!((transformed.channel(0).mean() - mean).abs() < 1e-5);
        }
    }

    #[test]
    fn dither_preserves_global_mean(img in arb_image_min(8, 16), levels in 2u32..6) {
        // Error diffusion needs area to diffuse into: tiny images can only
        // round, so the property is stated for images of at least 8×8.
        let d = ops::dither(&img, levels).unwrap();
        for c in 0..3 {
            let a = img.channel(c).mean();
            let b = d.channel(c).mean();
            // Error diffusion conserves mass up to boundary losses.
            prop_assert!((a - b).abs() < 0.12, "channel {c}: {a} vs {b}");
        }
    }

    #[test]
    fn blur_is_a_contraction(img in arb_image(12), radius in 1usize..4) {
        let b = ops::box_blur(&img, radius);
        for c in 0..3 {
            prop_assert!(b.channel(c).variance() <= img.channel(c).variance() + 1e-6);
            let lo = img.channel(c).as_slice().iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = img.channel(c).as_slice().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            for &v in b.channel(c).as_slice() {
                prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5, "blur left the value range");
            }
        }
    }

    #[test]
    fn resize_round_trip_preserves_constant_images(v in 0.0f32..=1.0, w in 2usize..12, h in 2usize..12) {
        let img = Image::from_fn(w, h, ColorSpace::Rgb, |_, _, _| v).unwrap();
        let up = img.resize_bilinear(w * 2, h * 2).unwrap();
        let down = up.resize_bilinear(w, h).unwrap();
        for &x in down.channel(0).as_slice() {
            prop_assert!((x - v).abs() < 1e-5);
        }
    }

    #[test]
    fn gray_conversion_is_a_convex_combination(img in arb_image(8)) {
        let gray = color::convert(&img, ColorSpace::Gray).unwrap();
        for y in 0..img.height() {
            for x in 0..img.width() {
                let p = img.pixel(x, y);
                let lo = p.iter().cloned().fold(f32::INFINITY, f32::min);
                let hi = p.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let g = gray.channel(0).get(x, y);
                prop_assert!(g >= lo - 1e-5 && g <= hi + 1e-5);
            }
        }
    }
}
