//! Integration test crate for the WALRUS workspace; see `tests/` targets.
