//! Database persistence: serialize an [`crate::ImageDatabase`] to a compact
//! binary snapshot and load it back.
//!
//! The paper's deployment stores regions in a *disk-based* R\*-tree (GiST)
//! so the index survives restarts and scales past memory. This module
//! provides the equivalent capability for the in-memory engine: the full
//! database — parameters, image metadata, every region's signature, bbox
//! and bitmap — round-trips through a versioned, endian-stable byte format.
//! The R\*-tree itself is rebuilt on load (bulk re-insertion), which keeps
//! the format independent of index implementation details.
//!
//! ## Format v3 (current; little-endian throughout)
//!
//! ```text
//! magic "WALRUSDB" | u32 version=3 | u64 last_lsn
//! | u32 params_len  | params block | u32 crc32(params block)
//! | u64 images_len  | images block | u32 crc32(images block)
//! | u32 crc32(everything above)
//! ```
//!
//! `last_lsn` is the sequence number of the last write-ahead-log record
//! folded into this snapshot (see [`crate::wal`]); standalone snapshots use
//! 0. Every section carries its own CRC-32 and the file ends with a
//! whole-file CRC-32, so truncation, bit rot and torn writes are detected
//! deterministically instead of by accidental structural failure.
//!
//! v3 extends each persisted region with its 128-bit binary prefilter
//! signature (two u64 thermometer-code lanes). The lanes are a pure
//! function of the region's `bbox_min`/`bbox_max`, so the loader rebuilds
//! them from the vectors and *verifies* the stored copy — a mismatch means
//! corruption (or a foreign encoder) and is rejected.
//!
//! ## Formats v1 and v2 (legacy, still readable)
//!
//! v2 is the same envelope without the signature lanes (they are rebuilt on
//! load); v1 additionally predates the checksums:
//!
//! ```text
//! magic "WALRUSDB" | u32 version=1 | params block | images block
//! ```
//!
//! The params/images block contents are identical across versions:
//!
//! ```text
//! images block: u64 image_count, then per image:
//!   u64 id | name (u32 len + bytes) | u64 w | u64 h | u64 live(0/1)
//!   u64 region_count | regions…
//! per region: u64 window_count | dims (u32) | centroid f32s | bbox_min | bbox_max
//!             bitmap: u64 w,h,gw,gh | u64 word_count | u64 words…
//!             v3 only: u64 sig_lane0 | u64 sig_lane1
//! ```
//!
//! [`save_to_file`] is crash-safe: bytes go to a temporary file which is
//! fsynced, renamed over the destination, and sealed with a directory
//! fsync — a crash at any instant leaves either the old snapshot or the
//! new one, never a torn file.

use crate::bitmap::RegionBitmap;
use crate::crc32::crc32;
use crate::database::ImageDatabase;
use crate::params::{MatchingKind, SignatureKind, SimilarityKind, WalrusParams};
use crate::region::Region;
use crate::storage::{DiskIo, StorageIo};
use crate::{Result, WalrusError};
use std::path::Path;
use walrus_imagery::ColorSpace;
use walrus_wavelet::SlidingParams;

const MAGIC: &[u8; 8] = b"WALRUSDB";
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;
const VERSION_V3: u32 = 3;

/// Serializes the database to bytes in the current (v3) format, with no
/// WAL position (`last_lsn = 0`).
pub fn save(db: &ImageDatabase) -> Vec<u8> {
    save_with_lsn(db, 0)
}

/// Serializes the database in the v3 format, recording `last_lsn` as the
/// sequence number of the last WAL record already reflected in it.
pub fn save_with_lsn(db: &ImageDatabase, last_lsn: u64) -> Vec<u8> {
    save_envelope(db, last_lsn, VERSION_V3)
}

/// Serializes the database in the legacy v2 format (same checksummed
/// envelope, regions without signature lanes). Kept so compatibility with
/// pre-v3 snapshots stays testable and downgrades remain possible.
pub fn save_v2(db: &ImageDatabase) -> Vec<u8> {
    save_envelope(db, 0, VERSION_V2)
}

fn save_envelope(db: &ImageDatabase, last_lsn: u64, version: u32) -> Vec<u8> {
    let mut params_block = Vec::with_capacity(128);
    write_params(&mut params_block, db.params());
    let images_block = write_images_block(db, version);

    let mut out = Vec::with_capacity(images_block.len() + params_block.len() + 64);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, version);
    put_u64(&mut out, last_lsn);
    put_u32(&mut out, params_block.len() as u32);
    out.extend_from_slice(&params_block);
    put_u32(&mut out, crc32(&params_block));
    put_u64(&mut out, images_block.len() as u64);
    out.extend_from_slice(&images_block);
    put_u32(&mut out, crc32(&images_block));
    let file_crc = crc32(&out);
    put_u32(&mut out, file_crc);
    out
}

/// Serializes the database in the legacy v1 format (no checksums). Kept so
/// compatibility with pre-v2 snapshots stays testable and downgrades remain
/// possible.
pub fn save_v1(db: &ImageDatabase) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION_V1);
    write_params(&mut out, db.params());
    out.extend_from_slice(&write_images_block(db, VERSION_V1));
    out
}

fn write_images_block(db: &ImageDatabase, version: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    let slots = db.image_slots();
    put_u64(&mut out, slots.len() as u64);
    for (id, slot) in slots.iter().enumerate() {
        put_u64(&mut out, id as u64);
        match slot {
            Some(img) => {
                put_str(&mut out, &img.name);
                put_u64(&mut out, img.width as u64);
                put_u64(&mut out, img.height as u64);
                put_u64(&mut out, 1);
                put_u64(&mut out, img.regions.len() as u64);
                for r in &img.regions {
                    write_region(&mut out, r, version >= VERSION_V3);
                }
            }
            None => {
                put_str(&mut out, "");
                put_u64(&mut out, 0);
                put_u64(&mut out, 0);
                put_u64(&mut out, 0);
                put_u64(&mut out, 0);
            }
        }
    }
    out
}

/// Writes the database to a file atomically (temp file → fsync → rename →
/// directory fsync).
pub fn save_to_file(db: &ImageDatabase, path: impl AsRef<Path>) -> Result<()> {
    save_to_file_with(&DiskIo, db, path.as_ref(), 0)
}

/// Like [`save_to_file`] but through a pluggable I/O layer and with an
/// explicit WAL position. Used by the durable store and the
/// crash-consistency tests.
pub fn save_to_file_with(
    io: &dyn StorageIo,
    db: &ImageDatabase,
    path: &Path,
    last_lsn: u64,
) -> Result<()> {
    atomic_write_bytes(io, path, &save_with_lsn(db, last_lsn))
}

/// Atomically replaces `path` with `bytes`: temp file → fsync → rename →
/// directory fsync. A crash at any step leaves either the old file or the
/// new one, never a mix — the discipline snapshots and the store manifest
/// share.
pub fn atomic_write_bytes(io: &dyn StorageIo, path: &Path, bytes: &[u8]) -> Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = Path::new(&tmp);
    io.write(tmp, bytes)?;
    io.fsync(tmp)?;
    io.rename(tmp, path)?;
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    io.fsync(parent)?;
    Ok(())
}

/// Deserializes a database from bytes (v1, v2 or v3), rebuilding the
/// spatial index. Pre-v3 snapshots come back with binary signatures rebuilt
/// from each region's bounds (the derivation is deterministic, so the
/// result is identical to a fresh extraction).
pub fn load(bytes: &[u8]) -> Result<ImageDatabase> {
    load_with_lsn(bytes).map(|(db, _)| db)
}

/// Like [`load`] but also returns the snapshot's `last_lsn` (0 for v1
/// snapshots, which predate the WAL).
pub fn load_with_lsn(bytes: &[u8]) -> Result<(ImageDatabase, u64)> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(8)?;
    if magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    match r.u32()? {
        VERSION_V1 => Ok((load_v1_body(&mut r)?, 0)),
        v @ (VERSION_V2 | VERSION_V3) => load_checksummed_body(bytes, &mut r, v),
        other => Err(corrupt(&format!("unsupported version {other}"))),
    }
}

fn load_v1_body(r: &mut Reader<'_>) -> Result<ImageDatabase> {
    let params = read_params(r)?;
    let mut db = ImageDatabase::new(params)?;
    read_images(r, &mut db, false)?;
    if r.pos != r.bytes.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(db)
}

fn load_checksummed_body(
    bytes: &[u8],
    r: &mut Reader<'_>,
    version: u32,
) -> Result<(ImageDatabase, u64)> {
    // Whole-file integrity first: the trailing CRC covers every byte before
    // it, so truncation, trailing garbage and bit rot all fail here.
    if bytes.len() < r.pos + 4 {
        return Err(corrupt("truncated"));
    }
    let body_end = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[body_end..].try_into().expect("length checked"));
    if crc32(&bytes[..body_end]) != stored {
        return Err(corrupt("whole-file checksum mismatch"));
    }

    let last_lsn = r.u64()?;
    let params_len = r.u32()? as usize;
    let params_block = r.framed(params_len)?;
    let params_crc = r.u32()?;
    if crc32(params_block) != params_crc {
        return Err(corrupt("params section checksum mismatch"));
    }
    let images_len = r.u64()? as usize;
    let images_block = r.framed(images_len)?;
    let images_crc = r.u32()?;
    if crc32(images_block) != images_crc {
        return Err(corrupt("images section checksum mismatch"));
    }
    if r.pos != body_end {
        return Err(corrupt("trailing bytes"));
    }

    let mut pr = Reader { bytes: params_block, pos: 0 };
    let params = read_params(&mut pr)?;
    if pr.pos != params_block.len() {
        return Err(corrupt("params section has trailing bytes"));
    }
    let mut db = ImageDatabase::new(params)?;
    let mut ir = Reader { bytes: images_block, pos: 0 };
    read_images(&mut ir, &mut db, version >= VERSION_V3)?;
    if ir.pos != images_block.len() {
        return Err(corrupt("images section has trailing bytes"));
    }
    Ok((db, last_lsn))
}

fn read_images(r: &mut Reader<'_>, db: &mut ImageDatabase, with_signature: bool) -> Result<()> {
    let image_count = r.u64()? as usize;
    if image_count > 100_000_000 {
        return Err(corrupt("implausible image count"));
    }
    for expected_id in 0..image_count {
        let id = r.u64()? as usize;
        if id != expected_id {
            return Err(corrupt("image ids out of order"));
        }
        let name = r.string()?;
        let width = r.u64()? as usize;
        let height = r.u64()? as usize;
        let live = r.u64()?;
        let region_count = r.u64()? as usize;
        if region_count > 10_000_000 {
            return Err(corrupt("implausible region count"));
        }
        if live == 1 {
            // Cap the pre-allocation by what the input could possibly hold
            // (a region is ≥ 48 bytes) so hostile counts cannot force a
            // huge allocation before the first read fails.
            let mut regions = Vec::with_capacity(region_count.min(r.remaining() / 48 + 1));
            for _ in 0..region_count {
                regions.push(read_region(r, with_signature)?);
            }
            let got = db.insert_regions(&name, width, height, regions)?;
            debug_assert_eq!(got, id);
        } else {
            db.insert_tombstone();
        }
    }
    Ok(())
}

/// Reads a database from a file (v1 or v2).
pub fn load_from_file(path: impl AsRef<Path>) -> Result<ImageDatabase> {
    load_from_file_with(&DiskIo, path.as_ref()).map(|(db, _)| db)
}

/// Like [`load_from_file`] but through a pluggable I/O layer, also
/// returning the snapshot's `last_lsn`.
pub fn load_from_file_with(
    io: &dyn StorageIo,
    path: &Path,
) -> Result<(ImageDatabase, u64)> {
    let bytes = io.read(path)?;
    load_with_lsn(&bytes)
}

fn corrupt(what: &str) -> WalrusError {
    WalrusError::Corrupt(format!("database snapshot: {what}"))
}

// --- primitive encoders -------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_f32(out, v);
    }
}

pub(crate) struct Reader<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > self.bytes.len() - self.pos {
            return Err(corrupt("truncated"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Bytes left to read.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes a length-prefixed frame whose size was already decoded.
    fn framed(&mut self, len: usize) -> Result<&'a [u8]> {
        if len > self.remaining() {
            return Err(corrupt("section extends past end of file"));
        }
        self.take(len)
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    pub(crate) fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        if len > 1 << 20 {
            return Err(corrupt("implausible string length"));
        }
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| corrupt("non-UTF8 string"))
    }

    fn f32s(&mut self) -> Result<Vec<f32>> {
        let len = self.u32()? as usize;
        if len > 1 << 24 {
            return Err(corrupt("implausible vector length"));
        }
        if len * 4 > self.remaining() {
            return Err(corrupt("vector extends past end of input"));
        }
        (0..len).map(|_| self.f32()).collect()
    }
}

// --- params -------------------------------------------------------------

fn write_params(out: &mut Vec<u8>, p: &WalrusParams) {
    put_u64(out, p.sliding.s as u64);
    put_u64(out, p.sliding.omega_min as u64);
    put_u64(out, p.sliding.omega_max as u64);
    put_u64(out, p.sliding.stride as u64);
    put_u32(out, color_space_tag(p.color_space));
    put_f64(out, p.cluster_epsilon);
    put_f32(out, p.query_epsilon);
    put_f64(out, p.tau);
    put_u32(out, match p.signature_kind {
        SignatureKind::Centroid => 0,
        SignatureKind::BoundingBox => 1,
    });
    put_u32(out, match p.matching {
        MatchingKind::Quick => 0,
        MatchingKind::Greedy => 1,
        MatchingKind::Exact => 2,
    });
    put_u32(out, match p.similarity {
        SimilarityKind::Symmetric => 0,
        SimilarityKind::QueryFraction => 1,
        SimilarityKind::MinImage => 2,
    });
    put_u64(out, p.bitmap_grid as u64);
    put_u64(out, p.max_regions_per_image.map(|m| m as u64 + 1).unwrap_or(0));
    put_u64(out, p.exact_pair_limit as u64);
}

fn read_params(r: &mut Reader<'_>) -> Result<WalrusParams> {
    let sliding = SlidingParams {
        s: r.u64()? as usize,
        omega_min: r.u64()? as usize,
        omega_max: r.u64()? as usize,
        stride: r.u64()? as usize,
    };
    let color_space = color_space_from_tag(r.u32()?)?;
    let cluster_epsilon = r.f64()?;
    let query_epsilon = r.f32()?;
    let tau = r.f64()?;
    let signature_kind = match r.u32()? {
        0 => SignatureKind::Centroid,
        1 => SignatureKind::BoundingBox,
        other => return Err(corrupt(&format!("bad signature kind {other}"))),
    };
    let matching = match r.u32()? {
        0 => MatchingKind::Quick,
        1 => MatchingKind::Greedy,
        2 => MatchingKind::Exact,
        other => return Err(corrupt(&format!("bad matching kind {other}"))),
    };
    let similarity = match r.u32()? {
        0 => SimilarityKind::Symmetric,
        1 => SimilarityKind::QueryFraction,
        2 => SimilarityKind::MinImage,
        other => return Err(corrupt(&format!("bad similarity kind {other}"))),
    };
    let bitmap_grid = r.u64()? as usize;
    let max_regions = match r.u64()? {
        0 => None,
        v => Some((v - 1) as usize),
    };
    let exact_pair_limit = r.u64()? as usize;
    Ok(WalrusParams {
        sliding,
        color_space,
        cluster_epsilon,
        query_epsilon,
        tau,
        signature_kind,
        matching,
        similarity,
        bitmap_grid,
        max_regions_per_image: max_regions,
        exact_pair_limit,
        // Runtime knobs; deliberately not part of the snapshot format —
        // loaded stores resolve them from the environment / defaults.
        threads: 0,
        budgets: walrus_guard::Budgets::default(),
        prefilter: None,
    })
}

fn color_space_tag(c: ColorSpace) -> u32 {
    match c {
        ColorSpace::Rgb => 0,
        ColorSpace::Ycc => 1,
        ColorSpace::Yiq => 2,
        ColorSpace::Hsv => 3,
        ColorSpace::Gray => 4,
    }
}

fn color_space_from_tag(tag: u32) -> Result<ColorSpace> {
    Ok(match tag {
        0 => ColorSpace::Rgb,
        1 => ColorSpace::Ycc,
        2 => ColorSpace::Yiq,
        3 => ColorSpace::Hsv,
        4 => ColorSpace::Gray,
        other => return Err(corrupt(&format!("bad color space {other}"))),
    })
}

// --- regions ------------------------------------------------------------

pub(crate) fn write_region(out: &mut Vec<u8>, r: &Region, with_signature: bool) {
    put_u64(out, r.window_count as u64);
    put_f32s(out, &r.centroid);
    put_f32s(out, &r.bbox_min);
    put_f32s(out, &r.bbox_max);
    let bm = &r.bitmap;
    put_u64(out, bm.width() as u64);
    put_u64(out, bm.height() as u64);
    put_u64(out, bm.grid_width() as u64);
    put_u64(out, bm.grid_height() as u64);
    let words = bm.words();
    put_u64(out, words.len() as u64);
    for &w in words {
        put_u64(out, w);
    }
    if with_signature {
        put_u64(out, r.signature.lanes[0]);
        put_u64(out, r.signature.lanes[1]);
    }
}

pub(crate) fn read_region(r: &mut Reader<'_>, with_signature: bool) -> Result<Region> {
    let window_count = r.u64()? as usize;
    let centroid = r.f32s()?;
    let bbox_min = r.f32s()?;
    let bbox_max = r.f32s()?;
    if centroid.len() != bbox_min.len() || centroid.len() != bbox_max.len() {
        return Err(corrupt("signature arity mismatch"));
    }
    let width = r.u64()? as usize;
    let height = r.u64()? as usize;
    let gw = r.u64()? as usize;
    let gh = r.u64()? as usize;
    let word_count = r.u64()? as usize;
    if word_count > 1 << 24 {
        return Err(corrupt("implausible bitmap size"));
    }
    if word_count * 8 > r.remaining() {
        return Err(corrupt("bitmap extends past end of input"));
    }
    let mut words = Vec::with_capacity(word_count);
    for _ in 0..word_count {
        words.push(r.u64()?);
    }
    let bitmap = RegionBitmap::from_words(width, height, gw, gh, words)
        .ok_or_else(|| corrupt("invalid bitmap geometry"))?;
    // The constructor derives the binary signature from the bounds; a v3
    // input must agree with its stored lanes (the encoding is a pure
    // function of the bounds, so disagreement is corruption).
    let region = Region::new(centroid, bbox_min, bbox_max, bitmap, window_count);
    if with_signature {
        let lanes = [r.u64()?, r.u64()?];
        if lanes != region.signature.lanes {
            return Err(corrupt("binary signature does not match region bounds"));
        }
    }
    Ok(region)
}

#[cfg(test)]
mod tests {
    use super::*;
    use walrus_imagery::synth::scene::{Scene, SceneObject};
    use walrus_imagery::synth::shapes::Shape;
    use walrus_imagery::synth::texture::{Rgb, Texture};
    use walrus_imagery::Image;

    fn params() -> WalrusParams {
        WalrusParams {
            sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 16, stride: 4 },
            ..WalrusParams::paper_defaults()
        }
    }

    fn scene(hue: f32) -> Image {
        Scene::new(Texture::Solid(Rgb(hue, 0.4, 0.3)))
            .with(SceneObject::new(
                Shape::Ellipse { rx: 0.6, ry: 0.6 },
                Texture::Solid(Rgb(0.9, 0.2, 0.2)),
                (0.5, 0.5),
                0.4,
            ))
            .render(64, 48)
            .unwrap()
    }

    fn populated() -> ImageDatabase {
        let mut db = ImageDatabase::new(params()).unwrap();
        for i in 0..5 {
            db.insert_image(&format!("img{i}"), &scene(0.1 * i as f32)).unwrap();
        }
        db
    }

    #[test]
    fn round_trip_preserves_everything() {
        let db = populated();
        let bytes = save(&db);
        let restored = load(&bytes).unwrap();
        assert_eq!(restored.len(), db.len());
        assert_eq!(restored.num_regions(), db.num_regions());
        assert_eq!(restored.params(), db.params());
        for id in 0..5 {
            let (a, b) = (db.image(id).unwrap(), restored.image(id).unwrap());
            assert_eq!(a.name, b.name);
            assert_eq!((a.width, a.height), (b.width, b.height));
            assert_eq!(a.regions.len(), b.regions.len());
            for (ra, rb) in a.regions.iter().zip(&b.regions) {
                assert_eq!(ra.centroid, rb.centroid);
                assert_eq!(ra.bitmap, rb.bitmap);
                assert_eq!(ra.window_count, rb.window_count);
            }
        }
    }

    #[test]
    fn restored_database_answers_queries_identically() {
        let db = populated();
        let restored = load(&save(&db)).unwrap();
        let query = scene(0.15);
        let a = db.top_k(&query, 5).unwrap();
        let b = restored.top_k(&query, 5).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.image_id, y.image_id);
            assert!((x.similarity - y.similarity).abs() < 1e-12);
        }
    }

    #[test]
    fn tombstones_survive_round_trip() {
        let mut db = populated();
        db.remove_image(2).unwrap();
        let restored = load(&save(&db)).unwrap();
        assert_eq!(restored.len(), 4);
        assert!(restored.image(2).is_none());
        assert!(restored.image(3).is_some());
        // New insertions continue from the right id.
        let mut restored = restored;
        let new_id = restored.insert_image("new", &scene(0.9)).unwrap();
        assert_eq!(new_id, 5);
    }

    #[test]
    fn v2_snapshots_load_with_signatures_rebuilt() {
        let db = populated();
        let v2 = save_v2(&db);
        assert_eq!(&v2[8..12], &2u32.to_le_bytes());
        let (restored, lsn) = load_with_lsn(&v2).unwrap();
        assert_eq!(lsn, 0);
        assert_eq!(restored.len(), db.len());
        assert_eq!(restored.num_regions(), db.num_regions());
        // The loader rebuilt every binary signature from the persisted
        // bounds; the derivation is deterministic, so they match the
        // in-memory originals bit for bit.
        for id in 0..5 {
            let (a, b) = (db.image(id).unwrap(), restored.image(id).unwrap());
            for (ra, rb) in a.regions.iter().zip(&b.regions) {
                assert_eq!(ra.signature, rb.signature);
            }
        }
        // Round-tripping the restored store through the current format
        // reproduces the direct v3 bytes exactly.
        assert_eq!(save(&restored), save(&db));
    }

    #[test]
    fn v3_lane_mismatch_detected_even_with_valid_checksums() {
        // Corrupt a signature lane, then *repair the CRCs*, so only the
        // semantic lanes-match-bounds check can catch the mismatch.
        let db = populated();
        let mut bytes = save(&db);
        let params_len = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
        let images_len_at = 24 + params_len + 4;
        let images_at = images_len_at + 8;
        let images_len =
            u64::from_le_bytes(bytes[images_len_at..images_at].try_into().unwrap()) as usize;
        // The images block ends with the last region's second lane.
        bytes[images_at + images_len - 1] ^= 0x01;
        let crc_at = images_at + images_len;
        let images_crc = crc32(&bytes[images_at..crc_at]);
        bytes[crc_at..crc_at + 4].copy_from_slice(&images_crc.to_le_bytes());
        let end = bytes.len() - 4;
        let file_crc = crc32(&bytes[..end]);
        bytes[end..].copy_from_slice(&file_crc.to_le_bytes());
        match load(&bytes) {
            Err(WalrusError::Corrupt(msg)) => {
                assert!(msg.contains("signature"), "unexpected corruption message: {msg}")
            }
            other => panic!("expected corrupt snapshot, got {other:?}"),
        }
    }

    #[test]
    fn v1_snapshots_still_load() {
        let db = populated();
        let v1 = save_v1(&db);
        assert_eq!(&v1[8..12], &1u32.to_le_bytes());
        let (restored, lsn) = load_with_lsn(&v1).unwrap();
        assert_eq!(lsn, 0, "v1 predates the WAL");
        assert_eq!(restored.len(), db.len());
        assert_eq!(restored.num_regions(), db.num_regions());
        assert_eq!(restored.params(), db.params());
    }

    #[test]
    fn lsn_round_trips() {
        let db = populated();
        let bytes = save_with_lsn(&db, 0xDEAD_BEEF);
        let (_, lsn) = load_with_lsn(&bytes).unwrap();
        assert_eq!(lsn, 0xDEAD_BEEF);
    }

    #[test]
    fn corrupt_inputs_rejected() {
        let db = populated();
        let good = save(&db);
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(load(&bad).is_err());
        // Bad version.
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(load(&bad).is_err());
        // Truncations at every prefix length must error, never panic.
        for cut in [0usize, 7, 11, 40, good.len() / 2, good.len() - 1] {
            assert!(load(&good[..cut]).is_err(), "cut at {cut} should fail");
        }
        // Trailing garbage (breaks the whole-file checksum).
        let mut bad = good.clone();
        bad.push(0);
        assert!(load(&bad).is_err());
    }

    #[test]
    fn v2_detects_every_single_byte_flip() {
        // Unlike v1, *every* byte of a v2 snapshot is covered by the
        // whole-file CRC: any flip must be rejected, not silently loaded.
        let db = populated();
        let good = save(&db);
        for pos in (0..good.len()).step_by(41) {
            let mut bad = good.clone();
            bad[pos] ^= 0x20;
            assert!(
                matches!(load(&bad), Err(WalrusError::Corrupt(_))),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A v1 image claiming absurd counts must fail fast on bounds
        // checks, not attempt a giant allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        put_u32(&mut bytes, VERSION_V1);
        let db = ImageDatabase::new(params()).unwrap();
        write_params(&mut bytes, db.params());
        put_u64(&mut bytes, u64::MAX); // image count
        assert!(load(&bytes).is_err());
    }

    #[test]
    fn file_round_trip() {
        let db = populated();
        let dir = std::env::temp_dir().join("walrus_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.walrus");
        save_to_file(&db, &path).unwrap();
        // The temp file must not linger after the atomic rename.
        assert!(!dir.join("db.walrus.tmp").exists());
        let restored = load_from_file(&path).unwrap();
        assert_eq!(restored.len(), db.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        match load_from_file("/nonexistent/nowhere.walrus") {
            Err(WalrusError::Io { .. }) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn empty_database_round_trips() {
        let db = ImageDatabase::new(params()).unwrap();
        let restored = load(&save(&db)).unwrap();
        assert!(restored.is_empty());
        assert_eq!(restored.params(), db.params());
    }
}
