//! **Ablation A4** — sliding-window stride and size range (paper §5.2).
//!
//! The paper fixes one window size (64×64) for its quality experiment but
//! the algorithm supports ranges `[ω_min, ω_max]` and any power-of-two
//! stride `t`. This harness sweeps both and reports the cost (window count,
//! extraction time, regions) and the benefit (precision@14 on the labeled
//! dataset), quantifying the trade the paper leaves implicit.
//!
//! Run: `cargo run --release -p walrus-bench --bin ablation_windows`

use walrus_bench::report::{f3, Table};
use walrus_bench::workloads::{
    build_walrus_db, flower_query, id_of_name, precision_at, retrieval_dataset, retrieval_params,
};
use walrus_bench::{scale, time};
use walrus_core::extract_regions;
use walrus_wavelet::SlidingParams;

fn main() {
    let dataset = retrieval_dataset(scale());
    let query = flower_query();
    println!(
        "Ablation A4: window stride and size-range sweeps\n\
         database: {} synthetic images (128x96)\n",
        dataset.len()
    );

    let mut table = Table::new(
        "Window Configuration",
        &["omega_range", "stride", "windows", "regions", "extract_s", "precision_at_14"],
    );
    let configs: Vec<(usize, usize, usize)> = vec![
        // (omega_min, omega_max, stride)
        (32, 32, 16),
        (32, 32, 8),
        (32, 32, 4),
        (16, 32, 8),
        (8, 32, 8),
    ];
    for (omega_min, omega_max, stride) in configs {
        let mut params = retrieval_params();
        params.sliding = SlidingParams { s: 2, omega_min, omega_max, stride };
        let windows = params.sliding.total_windows(128, 96);
        let (regions, extract_s) =
            time(|| extract_regions(&query, &params).expect("extraction succeeds"));
        let db = build_walrus_db(&dataset, params);
        let top = db.top_k(&query, 14).expect("query succeeds");
        let ids: Vec<usize> = top.iter().filter_map(|r| id_of_name(&dataset, &r.name)).collect();
        table.row(&[
            format!("{omega_min}-{omega_max}"),
            stride.to_string(),
            windows.to_string(),
            regions.len().to_string(),
            f3(extract_s),
            f3(precision_at(&dataset, &ids, 14)),
        ]);
    }
    table.print();
    println!(
        "Expectation: denser strides and wider size ranges multiply window\n\
         counts (cost) with diminishing precision gains — the reason the\n\
         paper settles on a single 64x64 window size with a coarse stride."
    );
}
