//! # walrus-wavelet
//!
//! Wavelet substrate for the WALRUS reproduction (Natsev, Rastogi, Shim;
//! SIGMOD 1999):
//!
//! * [`haar1d`] — the one-dimensional Haar transform of paper §3.1
//!   (pairwise averaging + differencing, with the paper's level
//!   normalization) and its inverse.
//! * [`haar2d`] — the two-dimensional *non-standard* decomposition of paper
//!   §3.2 / Figure 2 (`computeWavelet`), plus the standard decomposition and
//!   inverses, used for correctness cross-checks.
//! * [`daubechies`] — periodic Daubechies-D4 transforms (1-D and separable
//!   2-D multi-level), the wavelet family used by the WBIIS baseline the
//!   paper compares against.
//! * [`sliding`] — the paper's core §5.2 machinery: `s×s` signatures for all
//!   dyadic sliding windows, computed both naively (`O(N·ω²_max)`) and with
//!   the dynamic-programming algorithm of Figures 4 and 5
//!   (`O(N·S·log ω_max)`), which this crate verifies agree exactly.
//! * [`quantize`] — coefficient truncation (largest-magnitude-k) and sign
//!   quantization used by the Jacobs et al. FMIQ baseline.
//!
//! ## Conventions
//!
//! Coordinates are 0-based `(x, y)` with `x` the column, matching
//! `walrus-imagery`. Transforms store the overall average at `[0, 0]` and
//! detail coefficients in the paper's quadrant layout. "Raw" transforms keep
//! the plain average/difference values of Figure 2 (no level scaling); the
//! normalization of §3.1/§3.2 is applied as an explicit, invertible step so
//! that the DP and naive algorithms can be compared bit-for-bit on raw
//! output.

pub mod daubechies;
pub mod haar1d;
pub mod haar2d;
pub mod quantize;
pub mod sliding;

pub use quantize::{BinarySignature, QueryCode};
pub use sliding::{SlidingParams, WindowSignature};
pub use walrus_guard::{Guard, Interrupt};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WaveletError {
    /// Input length/side must be a power of two (and ≥ 1).
    NotPowerOfTwo {
        /// The offending length.
        len: usize,
    },
    /// A 2-D transform needs a square input.
    NotSquare {
        /// Actual width.
        width: usize,
        /// Actual height.
        height: usize,
    },
    /// Sliding-window parameters are inconsistent (see
    /// [`sliding::SlidingParams::validate`]).
    BadParams(String),
    /// The image is smaller than the smallest requested window.
    ImageTooSmall {
        /// Image width.
        width: usize,
        /// Image height.
        height: usize,
        /// Minimum window size requested.
        omega_min: usize,
    },
    /// A guarded sweep was stopped by cancellation or deadline expiry.
    Interrupted(Interrupt),
}

impl From<Interrupt> for WaveletError {
    fn from(int: Interrupt) -> Self {
        WaveletError::Interrupted(int)
    }
}

impl std::fmt::Display for WaveletError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaveletError::NotPowerOfTwo { len } => write!(f, "length {len} is not a power of two"),
            WaveletError::NotSquare { width, height } => {
                write!(f, "input must be square, got {width}x{height}")
            }
            WaveletError::BadParams(msg) => write!(f, "bad sliding-window parameters: {msg}"),
            WaveletError::ImageTooSmall { width, height, omega_min } => write!(
                f,
                "image {width}x{height} smaller than minimum window {omega_min}"
            ),
            WaveletError::Interrupted(int) => write!(f, "wavelet sweep interrupted: {int}"),
        }
    }
}

impl std::error::Error for WaveletError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WaveletError>;

/// Returns true when `n` is a power of two (and nonzero).
#[inline]
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// `log2` of a power of two.
#[inline]
pub fn log2(n: usize) -> u32 {
    debug_assert!(is_pow2(n));
    n.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_predicate() {
        assert!(is_pow2(1));
        assert!(is_pow2(2));
        assert!(is_pow2(1024));
        assert!(!is_pow2(0));
        assert!(!is_pow2(3));
        assert!(!is_pow2(12));
    }

    #[test]
    fn log2_of_powers() {
        assert_eq!(log2(1), 0);
        assert_eq!(log2(2), 1);
        assert_eq!(log2(256), 8);
    }
}
