//! Sharded durable store: fault isolation, rolling checkpoints, and
//! degraded-mode queries.
//!
//! [`ShardedStore`] splits one logical image database across `N`
//! independent [`DurableDatabase`] shards. Each shard owns its own
//! R\*-tree, write-ahead log, and snapshot under `shard-<i>/`; an image id
//! is hashed to its shard with [`shard_of`], so every region of an image
//! lives on exactly one shard. `N` is fixed at creation and recorded in a
//! checksummed `MANIFEST` at the store root.
//!
//! ## Why the answers are bit-identical to one shard
//!
//! The R\*-tree probe is exact — a query region's ε-neighborhood is
//! enumerated fully on every shard — and an image is scored only from its
//! own region pairs. Scattering a query over N shards therefore produces
//! exactly the per-image similarities the monolithic store produces, and
//! the gather merges them with the same deterministic order (similarity
//! descending, id ascending). The parallel-consistency suite asserts this
//! bit-for-bit.
//!
//! ## Fault isolation
//!
//! A shard whose storage fails — at open (unreadable snapshot, corrupt
//! WAL) or at runtime (append failure, poisoned WAL tail) — is
//! **quarantined**: queries skip it and report
//! [`ResultStatus::Degraded`] naming the missing shards, while the store
//! goes *read-only* (every mutation answers
//! [`WalrusError::ShardUnavailable`]). Writes must stop because ids are
//! assigned globally: a quarantined shard may hold the highest id, and
//! handing that id out again would corrupt the store on recovery.
//! `walrus recover <db> --shard <i>` repairs the shard's WAL to its
//! longest clean prefix ([`crate::wal::scan_valid_prefix`]) and swaps the
//! shard back in, restoring writes.
//!
//! ## Rolling checkpoints
//!
//! [`ShardedStore::checkpoint`] folds shards **one at a time**: only the
//! shard being checkpointed takes its exclusive lock, so ingest and
//! queries on every other shard proceed concurrently — the store never
//! stops the world. Writability is tracked in lock-free flags, so ingest
//! admission never blocks on a checkpointing shard's lock.

use crate::database::{ImageMeta, QueryOptions, ResultStatus};
use crate::extract::{extract_regions, extract_regions_guarded};
use crate::params::WalrusParams;
use crate::persist::{put_u32, put_u64};
use crate::recovery::{DurableDatabase, RecoveryReport, SNAPSHOT_FILE, WAL_FILE};
use crate::region::Region;
use crate::storage::{DiskIo, RetryIo, StorageIo};
use crate::store::{ShardCheckpoint, ShardHealth, Store};
use crate::wal;
use crate::{crc32::crc32, QueryOutcome, QueryStats, Result, WalrusError};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use walrus_guard::{Guard, RetryPolicy, SpanRecord, TraceContext};
use walrus_imagery::Image;

/// Manifest file name at the store root.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Most shards a store may be created with (bounds query fan-out).
pub const MAX_SHARDS: usize = 64;

const MANIFEST_MAGIC: &[u8; 8] = b"WALRUSMF";
const MANIFEST_VERSION: u32 = 1;
/// magic (8) + version (4) + shard count (8) + crc32 (4).
const MANIFEST_LEN: usize = 24;

/// Directory name of shard `i` under the store root.
pub fn shard_dir_name(shard: usize) -> String {
    format!("shard-{shard:03}")
}

/// Maps a global image id to its shard. The hash is the splitmix64
/// finalizer — uniform over sequential ids, platform-independent, and
/// **stable**: it is part of manifest version 1, so changing it requires a
/// new manifest version.
pub fn shard_of(id: usize, shard_count: usize) -> usize {
    let mut z = (id as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % shard_count as u64) as usize
}

fn encode_manifest(shard_count: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(MANIFEST_LEN);
    out.extend_from_slice(MANIFEST_MAGIC);
    put_u32(&mut out, MANIFEST_VERSION);
    put_u64(&mut out, shard_count as u64);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

fn decode_manifest(bytes: &[u8]) -> Result<usize> {
    let corrupt = |what: &str| WalrusError::Corrupt(format!("store manifest: {what}"));
    if bytes.len() != MANIFEST_LEN {
        return Err(corrupt(&format!("wrong length {} (want {MANIFEST_LEN})", bytes.len())));
    }
    if &bytes[..8] != MANIFEST_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let stored_crc = u32::from_le_bytes(bytes[20..24].try_into().expect("length checked"));
    if crc32(&bytes[..20]) != stored_crc {
        return Err(corrupt("checksum mismatch"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("length checked"));
    if version != MANIFEST_VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let count = u64::from_le_bytes(bytes[12..20].try_into().expect("length checked")) as usize;
    if !(1..=MAX_SHARDS).contains(&count) {
        return Err(corrupt(&format!("implausible shard count {count}")));
    }
    Ok(count)
}

/// Writes the manifest atomically (temp file → fsync → rename → directory
/// fsync), same discipline as snapshots.
fn write_manifest(io: &dyn StorageIo, root: &Path, shard_count: usize) -> Result<()> {
    let path = root.join(MANIFEST_FILE);
    let tmp = root.join(format!("{MANIFEST_FILE}.tmp"));
    let write = io
        .write(&tmp, &encode_manifest(shard_count))
        .and_then(|()| io.fsync(&tmp))
        .and_then(|()| io.rename(&tmp, &path))
        .and_then(|()| io.fsync(root));
    write.map_err(WalrusError::io_context("write manifest", &path))
}

/// Reads and validates the manifest; returns the shard count.
pub fn read_manifest(io: &dyn StorageIo, root: &Path) -> Result<usize> {
    let path = root.join(MANIFEST_FILE);
    let bytes = io.read(&path).map_err(WalrusError::io_context("read manifest", &path))?;
    decode_manifest(&bytes)
}

/// True when `root` holds a sharded store (its manifest is present).
pub fn is_sharded_store(root: &Path) -> bool {
    root.join(MANIFEST_FILE).exists()
}

/// What opening one shard found: its recovery report, or the error that
/// quarantined it.
#[derive(Debug, Clone)]
pub struct ShardRecovery {
    /// Shard index.
    pub shard: usize,
    /// Recovery report when the shard opened cleanly.
    pub report: Option<RecoveryReport>,
    /// Open error when the shard was quarantined.
    pub error: Option<String>,
}

/// What [`ShardedStore::recover_shard`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRepair {
    /// Shard index.
    pub shard: usize,
    /// WAL bytes dropped to restore a clean log (0 = log was clean).
    pub truncated_bytes: u64,
    /// Committed WAL records that survived the repair.
    pub records_kept: usize,
    /// The reopen's recovery report.
    pub report: RecoveryReport,
}

#[derive(Debug)]
enum ShardSlot {
    Healthy(Box<DurableDatabase>),
    /// A failed shard, retaining the last counts observed while it was
    /// healthy so health reporting doesn't pretend the shard is empty.
    /// Both are 0 when the shard never opened (its contents are unknown).
    Quarantined { error: String, images: usize, wal_bytes: u64 },
}

/// N-shard durable store. See the module docs for the design.
#[derive(Debug)]
pub struct ShardedStore {
    io: Arc<dyn StorageIo>,
    root: PathBuf,
    params: WalrusParams,
    shards: Vec<parking_lot::RwLock<ShardSlot>>,
    /// Lock-free mirror of each slot's quarantine bit, so write admission
    /// ([`ShardedStore::ensure_writable`]) never blocks on a shard lock
    /// held by a rolling checkpoint.
    quarantined: Vec<AtomicBool>,
    /// Global id assignment: the next id to hand out. Held across the
    /// target shard's WAL append so ids arrive at each shard in strictly
    /// increasing order (a WAL invariant).
    ingest: parking_lot::Mutex<usize>,
}

fn quarantine_worthy(e: &WalrusError) -> bool {
    matches!(e, WalrusError::Io { .. } | WalrusError::Corrupt(_))
}

impl ShardedStore {
    /// Opens (or creates) a sharded store on the real filesystem.
    ///
    /// `shards` is the shard count for a **new** store; pass `0` to require
    /// an existing store. An existing manifest always wins — a non-zero
    /// `shards` that disagrees with it is an error, because shard count is
    /// fixed at creation (ids are hashed to shards; re-hashing would strand
    /// every image).
    ///
    /// A shard that fails to open is quarantined, not fatal: the returned
    /// [`ShardRecovery`] list says what happened to each shard. Only a
    /// missing or corrupt manifest fails the open itself.
    pub fn open(
        root: impl AsRef<Path>,
        params: WalrusParams,
        shards: usize,
    ) -> Result<(Self, Vec<ShardRecovery>)> {
        Self::open_with(
            Arc::new(RetryIo::new(Arc::new(DiskIo), RetryPolicy::default())),
            root,
            params,
            shards,
        )
    }

    /// Like [`ShardedStore::open`] but over a pluggable I/O layer — the
    /// entry point for fault-injection tests.
    pub fn open_with(
        io: Arc<dyn StorageIo>,
        root: impl AsRef<Path>,
        params: WalrusParams,
        shards: usize,
    ) -> Result<(Self, Vec<ShardRecovery>)> {
        let root = root.as_ref().to_path_buf();
        io.create_dir_all(&root)?;
        let manifest_path = root.join(MANIFEST_FILE);
        let count = if io.exists(&manifest_path) {
            let bytes = io
                .read(&manifest_path)
                .map_err(WalrusError::io_context("read manifest", &manifest_path))?;
            let count = decode_manifest(&bytes)?;
            if shards != 0 && shards != count {
                return Err(WalrusError::BadParams(format!(
                    "store has {count} shards (fixed at creation); requested {shards}"
                )));
            }
            count
        } else {
            if io.exists(&root.join(SNAPSHOT_FILE)) {
                return Err(WalrusError::BadParams(
                    "directory holds a non-sharded store (snapshot present, no manifest)"
                        .to_string(),
                ));
            }
            if shards == 0 {
                return Err(WalrusError::BadParams(
                    "no sharded store here; a shard count is required to create one".to_string(),
                ));
            }
            if !(1..=MAX_SHARDS).contains(&shards) {
                return Err(WalrusError::BadParams(format!(
                    "shard count {shards} out of range 1..={MAX_SHARDS}"
                )));
            }
            write_manifest(io.as_ref(), &root, shards)?;
            shards
        };

        let mut slots = Vec::with_capacity(count);
        let mut quarantined = Vec::with_capacity(count);
        let mut recoveries = Vec::with_capacity(count);
        let mut resolved_params: Option<WalrusParams> = None;
        for shard in 0..count {
            let dir = root.join(shard_dir_name(shard));
            match DurableDatabase::open_with(io.clone(), &dir, params) {
                Ok((db, report)) => {
                    // Persisted shard parameters win over the caller's, the
                    // same precedence the monolithic open has.
                    if resolved_params.is_none() {
                        resolved_params = Some(*db.db().params());
                    }
                    slots.push(parking_lot::RwLock::new(ShardSlot::Healthy(Box::new(db))));
                    quarantined.push(AtomicBool::new(false));
                    recoveries.push(ShardRecovery { shard, report: Some(report), error: None });
                }
                Err(e) => {
                    let error = e.to_string();
                    slots.push(parking_lot::RwLock::new(ShardSlot::Quarantined {
                        error: error.clone(),
                        images: 0,
                        wal_bytes: 0,
                    }));
                    quarantined.push(AtomicBool::new(true));
                    recoveries.push(ShardRecovery { shard, report: None, error: Some(error) });
                }
            }
        }

        let next_id = slots
            .iter()
            .map(|slot| match &*slot.read() {
                ShardSlot::Healthy(db) => db.db().image_slots().len(),
                ShardSlot::Quarantined { .. } => 0,
            })
            .max()
            .unwrap_or(0);

        let store = ShardedStore {
            io,
            root,
            params: resolved_params.unwrap_or(params),
            shards: slots,
            quarantined,
            ingest: parking_lot::Mutex::new(next_id),
        };
        Ok((store, recoveries))
    }

    /// Store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of shards (fixed at creation).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A copy of the engine configuration.
    pub fn params(&self) -> WalrusParams {
        self.params
    }

    /// The next global id that would be assigned — an exclusive upper bound
    /// on every id the store has handed out.
    pub fn next_id(&self) -> usize {
        *self.ingest.lock()
    }

    /// Indices of the currently quarantined shards.
    pub fn quarantined_shards(&self) -> Vec<usize> {
        self.quarantined
            .iter()
            .enumerate()
            .filter(|(_, q)| q.load(Ordering::Acquire))
            .map(|(i, _)| i)
            .collect()
    }

    /// Refuses mutations while any shard is quarantined (ids are global;
    /// see the module docs). Lock-free, so admission never waits behind a
    /// shard checkpoint.
    fn ensure_writable(&self) -> Result<()> {
        match self.quarantined.iter().position(|q| q.load(Ordering::Acquire)) {
            Some(shard) => Err(WalrusError::ShardUnavailable { shard }),
            None => Ok(()),
        }
    }

    fn mark_quarantined(&self, shard: usize, slot: &mut ShardSlot, error: String) {
        self.quarantined[shard].store(true, Ordering::Release);
        // Keep the last counts the shard reported while healthy: health
        // gauges should say what the quarantined shard held, not zero.
        let (images, wal_bytes) = match &*slot {
            ShardSlot::Healthy(db) => (db.len(), db.wal_len()),
            ShardSlot::Quarantined { images, wal_bytes, .. } => (*images, *wal_bytes),
        };
        *slot = ShardSlot::Quarantined { error, images, wal_bytes };
    }

    /// Inserts pre-extracted regions at the next global id. Caller holds
    /// the ingest lock (`next`).
    fn insert_extracted_locked(
        &self,
        next: &mut usize,
        name: &str,
        width: usize,
        height: usize,
        regions: Vec<Region>,
    ) -> Result<usize> {
        let id = *next;
        let shard = shard_of(id, self.shards.len());
        let mut slot = self.shards[shard].write();
        let (result, poisoned) = match &mut *slot {
            ShardSlot::Healthy(db) => {
                let r = db.insert_regions_at(id, name, width, height, regions);
                let poisoned = db.is_poisoned();
                (r, poisoned)
            }
            ShardSlot::Quarantined { .. } => {
                return Err(WalrusError::ShardUnavailable { shard });
            }
        };
        match result {
            Ok(got) => {
                *next = id + 1;
                Ok(got)
            }
            Err(e) => {
                if poisoned || quarantine_worthy(&e) {
                    self.mark_quarantined(shard, &mut slot, e.to_string());
                }
                Err(e)
            }
        }
    }

    /// Extracts regions of `image` and durably inserts them; returns the
    /// new global id.
    pub fn insert_image(&self, name: &str, image: &Image) -> Result<usize> {
        let regions = extract_regions(image, &self.params)?;
        let mut next = self.ingest.lock();
        self.ensure_writable()?;
        self.insert_extracted_locked(&mut next, name, image.width(), image.height(), regions)
    }

    /// Durably inserts pre-extracted regions at the next global id — the
    /// sharded counterpart of [`DurableDatabase::insert_regions`], used by
    /// fault sweeps that pre-compute extraction once per fixture.
    pub fn insert_regions(
        &self,
        name: &str,
        width: usize,
        height: usize,
        regions: Vec<Region>,
    ) -> Result<usize> {
        let mut next = self.ingest.lock();
        self.ensure_writable()?;
        self.insert_extracted_locked(&mut next, name, width, height, regions)
    }

    /// Durable batch ingest: parallel lock-free extraction, then the
    /// ingest lock for id assignment and the per-shard WAL appends. A
    /// mid-batch failure commits the prefix, like a serial insert loop.
    pub fn insert_images_batch(&self, items: &[(&str, &Image)]) -> Result<Vec<usize>> {
        self.insert_images_batch_guarded(items, &Guard::none())
    }

    /// [`ShardedStore::insert_images_batch`] under a lifecycle [`Guard`];
    /// all-or-nothing under interruption, with the final poll before the
    /// ingest lock is taken.
    pub fn insert_images_batch_guarded(
        &self,
        items: &[(&str, &Image)],
        guard: &Guard,
    ) -> Result<Vec<usize>> {
        let params = self.params;
        let threads = walrus_parallel::resolve_threads(params.threads);
        let ingest_span = guard.span("ingest");
        if let Some(s) = &ingest_span {
            s.add("images", items.len() as u64);
        }
        // Workers share the interrupt sources but not the trace (spans are
        // opened only on this orchestrating thread).
        let extract_span = guard.span("extract");
        let worker_guard = guard.without_trace();
        let extracted: Vec<Vec<Region>> =
            walrus_parallel::try_parallel_map_guarded(threads, guard, items, |_, (_, image)| {
                extract_regions_guarded(image, &params, 1, &worker_guard)
            })?;
        if let Some(s) = &extract_span {
            s.add("regions", extracted.iter().map(Vec::len).sum::<usize>() as u64);
        }
        drop(extract_span);
        guard.poll().map_err(WalrusError::from)?;
        let wal_span = guard.span("wal_append");
        let mut next = self.ingest.lock();
        self.ensure_writable()?;
        let wal_before = self.wal_len();
        let mut ids = Vec::with_capacity(items.len());
        for ((name, image), regions) in items.iter().zip(extracted) {
            ids.push(self.insert_extracted_locked(
                &mut next,
                name,
                image.width(),
                image.height(),
                regions,
            )?);
        }
        if let Some(s) = &wal_span {
            s.add("records", ids.len() as u64);
            s.add("bytes", self.wal_len().saturating_sub(wal_before));
        }
        Ok(ids)
    }

    /// Durably removes an image from its shard.
    pub fn remove_image(&self, id: usize) -> Result<()> {
        let _next = self.ingest.lock();
        self.ensure_writable()?;
        let shard = shard_of(id, self.shards.len());
        let mut slot = self.shards[shard].write();
        let (result, poisoned) = match &mut *slot {
            ShardSlot::Healthy(db) => {
                let r = db.remove_image(id);
                let poisoned = db.is_poisoned();
                (r, poisoned)
            }
            ShardSlot::Quarantined { .. } => {
                return Err(WalrusError::ShardUnavailable { shard });
            }
        };
        result.map_err(|e| {
            if poisoned || quarantine_worthy(&e) {
                self.mark_quarantined(shard, &mut slot, e.to_string());
            }
            e
        })
    }

    /// Scatter-gather query under per-request [`QueryOptions`]. Healthy
    /// shards are probed in parallel on the `walrus-parallel` pool (each
    /// worker records its `shard_probe` span into a private trace that is
    /// grafted back in shard order, so the trace tree is identical for
    /// every thread count); quarantined shards are skipped and reported in
    /// [`ResultStatus::Degraded`].
    pub fn query_with_options_guarded(
        &self,
        query: &Image,
        opts: &QueryOptions,
        guard: &Guard,
    ) -> Result<QueryOutcome> {
        let (params, min_similarity) = opts.resolve(&self.params)?;
        let _query_span = guard.span("query");
        let regions = match extract_regions_guarded(query, &params, params.threads, guard) {
            Ok(r) => r,
            Err(WalrusError::DeadlineExceeded) => return Ok(QueryOutcome::empty_partial()),
            Err(e) => return Err(e),
        };
        let mut outcome =
            self.scatter_gather(&params, &regions, query.area(), min_similarity, guard)?;
        if let Some(k) = opts.k {
            outcome.matches.truncate(k);
        }
        Ok(outcome)
    }

    /// Query with default options (the sharded counterpart of
    /// [`crate::ImageDatabase::query_guarded`]).
    pub fn query_guarded(&self, query: &Image, guard: &Guard) -> Result<QueryOutcome> {
        self.query_with_options_guarded(query, &QueryOptions::default(), guard)
    }

    /// Full query without a guard.
    pub fn query(&self, query: &Image) -> Result<QueryOutcome> {
        self.query_guarded(query, &Guard::none())
    }

    /// Probes one shard under `guard` (a worker guard carrying a private
    /// trace when the request is traced). `Ok(None)` = shard quarantined.
    fn probe_shard(
        &self,
        i: usize,
        params: &WalrusParams,
        q_regions: &[Region],
        query_area: usize,
        min_similarity: f64,
        guard: &Guard,
    ) -> Result<Option<QueryOutcome>> {
        let probe_span = guard.span("shard_probe");
        if let Some(s) = &probe_span {
            s.add("shard", i as u64);
        }
        let slot = self.shards[i].read();
        let db = match &*slot {
            ShardSlot::Healthy(db) => db,
            ShardSlot::Quarantined { .. } => return Ok(None),
        };
        // Each shard probes under the *full* candidate budget; the
        // aggregate is enforced after the gather. Splitting the budget
        // across shards instead would reject queries the monolithic
        // store accepts (one hot shard vs. an even spread), breaking
        // the error/no-error equivalence the bit-identity tests pin.
        let shard_outcome = db.db().query_regions_with_params_guarded(
            params,
            q_regions,
            query_area,
            min_similarity,
            guard,
        )?;
        if let Some(s) = &probe_span {
            s.add("images", shard_outcome.stats.distinct_images as u64);
            s.add("hits", shard_outcome.stats.total_matching_regions as u64);
        }
        Ok(Some(shard_outcome))
    }

    fn scatter_gather(
        &self,
        params: &WalrusParams,
        q_regions: &[Region],
        query_area: usize,
        min_similarity: f64,
        guard: &Guard,
    ) -> Result<QueryOutcome> {
        // Shards are probed in parallel: each worker runs one shard under a
        // clone of the guard whose trace is swapped for a *private* one (on
        // the request clock), and the orchestrator grafts the recorded
        // spans back in shard order once the fan-out completes — so the
        // span tree and every result byte are identical at any thread
        // count. With one worker the fan-out runs inline on this thread,
        // which is exactly the old sequential loop.
        let shard_workers =
            walrus_parallel::resolve_threads(params.threads).min(self.shards.len());
        // When shards fan out across workers, each shard's own probe runs
        // single-threaded — one level of parallelism, not two multiplied.
        let mut shard_params = *params;
        if shard_workers > 1 {
            shard_params.threads = 1;
        }
        let trace = guard.trace().cloned();
        let worker_base = guard.without_trace();
        let indices: Vec<usize> = (0..self.shards.len()).collect();
        let probed: Vec<(Option<QueryOutcome>, Option<Vec<SpanRecord>>)> =
            walrus_parallel::try_parallel_map(shard_workers, &indices, |_, &i| {
                let worker_trace = trace.as_ref().map(|t| TraceContext::new(t.clock()));
                let wg = match &worker_trace {
                    Some(t) => worker_base.clone().tracing(t.clone()),
                    None => worker_base.clone(),
                };
                let outcome = self.probe_shard(i, &shard_params, q_regions, query_area,
                    min_similarity, &wg)?;
                Ok::<_, WalrusError>((outcome, worker_trace.map(|t| t.report().spans)))
            })?;
        if let Some(t) = &trace {
            for (_, spans) in probed.iter() {
                if let Some(spans) = spans {
                    t.graft(spans);
                }
            }
        }
        let mut shards_unavailable = Vec::new();
        let mut partial = false;
        let mut matches = Vec::new();
        let mut total_hits = 0usize;
        let mut distinct_images = 0usize;
        for (i, (outcome, _)) in probed.into_iter().enumerate() {
            let Some(shard_outcome) = outcome else {
                shards_unavailable.push(i);
                continue;
            };
            partial |= shard_outcome.status == ResultStatus::Partial;
            total_hits += shard_outcome.stats.total_matching_regions;
            distinct_images += shard_outcome.stats.distinct_images;
            matches.extend(shard_outcome.matches);
        }
        if total_hits > params.budgets.max_index_candidates {
            return Err(WalrusError::BudgetExceeded {
                what: "index candidates",
                used: total_hits,
                limit: params.budgets.max_index_candidates,
            });
        }
        // Deterministic gather: the same total order the monolithic store
        // sorts into (each image lives on exactly one shard, with a
        // distinct id, so the comparator is total).
        matches.sort_by(|a, b| {
            b.similarity
                .partial_cmp(&a.similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.image_id.cmp(&b.image_id))
        });
        let query_regions = q_regions.len();
        let stats = QueryStats {
            query_regions,
            total_matching_regions: total_hits,
            avg_regions_per_query_region: if query_regions == 0 {
                0.0
            } else {
                total_hits as f64 / query_regions as f64
            },
            distinct_images,
        };
        let status = if !shards_unavailable.is_empty() {
            ResultStatus::Degraded { shards_unavailable }
        } else if partial {
            ResultStatus::Partial
        } else {
            ResultStatus::Complete
        };
        Ok(QueryOutcome { matches, stats, status })
    }

    /// Owned metadata for an image. `Ok(None)` = unknown or removed;
    /// `Err(ShardUnavailable)` = its shard is quarantined, so its
    /// existence cannot be determined.
    pub fn image_meta(&self, id: usize) -> Result<Option<ImageMeta>> {
        let shard = shard_of(id, self.shards.len());
        match &*self.shards[shard].read() {
            ShardSlot::Healthy(db) => Ok(db.image_meta(id)),
            ShardSlot::Quarantined { .. } => Err(WalrusError::ShardUnavailable { shard }),
        }
    }

    /// Checkpoints one shard (exclusive lock on that shard only). A
    /// storage failure during the checkpoint quarantines the shard.
    pub fn checkpoint_shard(&self, shard: usize) -> Result<ShardCheckpoint> {
        if shard >= self.shards.len() {
            return Err(WalrusError::BadParams(format!(
                "shard {shard} out of range (store has {})",
                self.shards.len()
            )));
        }
        let started = Instant::now();
        let mut slot = self.shards[shard].write();
        let (result, poisoned) = match &mut *slot {
            ShardSlot::Healthy(db) => {
                let r = db.checkpoint().map(|()| ShardCheckpoint {
                    shard,
                    last_lsn: db.last_lsn(),
                    duration: started.elapsed(),
                });
                let poisoned = db.is_poisoned();
                (r, poisoned)
            }
            ShardSlot::Quarantined { .. } => {
                return Err(WalrusError::ShardUnavailable { shard });
            }
        };
        result.map_err(|e| {
            if poisoned || quarantine_worthy(&e) {
                self.mark_quarantined(shard, &mut slot, e.to_string());
            }
            e
        })
    }

    /// Rolling checkpoint: folds shards one at a time — never the whole
    /// store at once — skipping quarantined shards. The report lists what
    /// each healthy shard did.
    pub fn checkpoint(&self) -> Result<Vec<ShardCheckpoint>> {
        let mut reports = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            if self.quarantined[shard].load(Ordering::Acquire) {
                continue;
            }
            match self.checkpoint_shard(shard) {
                Ok(report) => reports.push(report),
                // Raced with a quarantine transition: skip, like any other
                // quarantined shard.
                Err(WalrusError::ShardUnavailable { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(reports)
    }

    /// Per-shard health, in shard order.
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, slot)| match &*slot.read() {
                ShardSlot::Healthy(db) => ShardHealth {
                    shard,
                    healthy: true,
                    error: None,
                    images: db.len(),
                    wal_bytes: db.wal_len(),
                },
                ShardSlot::Quarantined { error, images, wal_bytes } => ShardHealth {
                    shard,
                    healthy: false,
                    error: Some(error.clone()),
                    images: *images,
                    wal_bytes: *wal_bytes,
                },
            })
            .collect()
    }

    /// Repairs a quarantined shard **in place** and swaps it back in:
    ///
    /// 1. truncate its WAL to the longest clean prefix
    ///    ([`crate::wal::scan_valid_prefix`]) — an explicit, operator-
    ///    requested acceptance that records past the damage are lost;
    /// 2. reopen the shard from its snapshot + repaired WAL;
    /// 3. on success, clear the quarantine and restore writes.
    ///
    /// Snapshot damage is not repairable this way — the reopen error is
    /// returned and the shard stays quarantined. Also works on a healthy
    /// shard (a no-op repair followed by a clean reopen).
    pub fn recover_shard(&self, shard: usize) -> Result<ShardRepair> {
        if shard >= self.shards.len() {
            return Err(WalrusError::BadParams(format!(
                "shard {shard} out of range (store has {})",
                self.shards.len()
            )));
        }
        // Hold the ingest lock across the swap so id assignment sees the
        // recovered shard's slots atomically.
        let mut next = self.ingest.lock();
        let mut slot = self.shards[shard].write();
        let dir = self.root.join(shard_dir_name(shard));
        let wal_path = dir.join(WAL_FILE);
        let mut truncated_bytes = 0u64;
        let mut records_kept = 0usize;
        if self.io.exists(&wal_path) {
            let bytes = self
                .io
                .read(&wal_path)
                .map_err(WalrusError::io_context("read", &wal_path))?;
            let scan = wal::scan_valid_prefix(&bytes);
            records_kept = scan.records.len();
            if scan.valid_len < bytes.len() as u64 {
                truncated_bytes = bytes.len() as u64 - scan.valid_len;
                self.io
                    .truncate(&wal_path, scan.valid_len)
                    .and_then(|()| self.io.fsync(&wal_path))
                    .map_err(WalrusError::io_context("truncate damaged", &wal_path))?;
            }
        }
        let (db, report) = DurableDatabase::open_with(self.io.clone(), &dir, self.params)?;
        *next = (*next).max(db.db().image_slots().len());
        *slot = ShardSlot::Healthy(Box::new(db));
        self.quarantined[shard].store(false, Ordering::Release);
        Ok(ShardRepair { shard, truncated_bytes, records_kept, report })
    }

    /// Live images across healthy shards.
    pub fn len(&self) -> usize {
        self.fold_healthy(|db| db.len())
    }

    /// True when no healthy shard holds an image.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Indexed regions across healthy shards.
    pub fn num_regions(&self) -> usize {
        self.fold_healthy(|db| db.db().num_regions())
    }

    /// Valid WAL bytes across healthy shards.
    pub fn wal_len(&self) -> u64 {
        self.fold_healthy(|db| db.wal_len())
    }

    /// WAL records since the last checkpoint, across healthy shards.
    pub fn records_since_checkpoint(&self) -> usize {
        self.fold_healthy(|db| db.records_since_checkpoint())
    }

    fn fold_healthy<T: std::iter::Sum>(&self, f: impl Fn(&DurableDatabase) -> T) -> T {
        self.shards
            .iter()
            .filter_map(|slot| match &*slot.read() {
                ShardSlot::Healthy(db) => Some(f(db)),
                ShardSlot::Quarantined { .. } => None,
            })
            .sum()
    }
}

impl Store for ShardedStore {
    fn params(&self) -> WalrusParams {
        ShardedStore::params(self)
    }

    fn shard_count(&self) -> usize {
        ShardedStore::shard_count(self)
    }

    fn len(&self) -> usize {
        ShardedStore::len(self)
    }

    fn num_regions(&self) -> usize {
        ShardedStore::num_regions(self)
    }

    fn wal_len(&self) -> u64 {
        ShardedStore::wal_len(self)
    }

    fn records_since_checkpoint(&self) -> usize {
        ShardedStore::records_since_checkpoint(self)
    }

    fn image_meta(&self, id: usize) -> Result<Option<ImageMeta>> {
        ShardedStore::image_meta(self, id)
    }

    fn insert_image(&self, name: &str, image: &Image) -> Result<usize> {
        ShardedStore::insert_image(self, name, image)
    }

    fn insert_images_batch_guarded(
        &self,
        items: &[(&str, &Image)],
        guard: &Guard,
    ) -> Result<Vec<usize>> {
        ShardedStore::insert_images_batch_guarded(self, items, guard)
    }

    fn remove_image(&self, id: usize) -> Result<()> {
        ShardedStore::remove_image(self, id)
    }

    fn query_with_options_guarded(
        &self,
        query: &Image,
        opts: &QueryOptions,
        guard: &Guard,
    ) -> Result<QueryOutcome> {
        ShardedStore::query_with_options_guarded(self, query, opts, guard)
    }

    fn checkpoint(&self) -> Result<Vec<ShardCheckpoint>> {
        ShardedStore::checkpoint(self)
    }

    fn shard_health(&self) -> Vec<ShardHealth> {
        ShardedStore::shard_health(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::FaultIo;
    use walrus_imagery::synth::scene::{Scene, SceneObject};
    use walrus_imagery::synth::shapes::Shape;
    use walrus_imagery::synth::texture::{Rgb, Texture};
    use walrus_wavelet::SlidingParams;

    fn params() -> WalrusParams {
        WalrusParams {
            sliding: SlidingParams { s: 2, omega_min: 8, omega_max: 16, stride: 4 },
            ..WalrusParams::paper_defaults()
        }
    }

    fn scene(hue: f32) -> Image {
        Scene::new(Texture::Solid(Rgb(hue, 0.4, 0.3)))
            .with(SceneObject::new(
                Shape::Ellipse { rx: 0.5, ry: 0.5 },
                Texture::Solid(Rgb(0.9, 0.2, 0.2)),
                (0.5, 0.5),
                0.4,
            ))
            .render(32, 32)
            .unwrap()
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        // Pinned values: shard routing is an on-disk compatibility surface
        // (manifest version 1). If this test fails, bump the manifest
        // version instead of accepting the new routing.
        let pinned: Vec<usize> = (0..8).map(|id| shard_of(id, 4)).collect();
        assert_eq!(pinned, vec![3, 1, 2, 1, 2, 2, 0, 3]);
        for id in 0..10_000 {
            assert!(shard_of(id, 4) < 4);
            assert_eq!(shard_of(id, 1), 0);
        }
    }

    #[test]
    fn manifest_round_trips_and_rejects_damage() {
        let bytes = encode_manifest(4);
        assert_eq!(decode_manifest(&bytes).unwrap(), 4);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            assert!(decode_manifest(&bad).is_err(), "flip at byte {i} must be caught");
        }
        assert!(decode_manifest(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn inserts_route_by_hash_and_survive_reopen() {
        let io = Arc::new(FaultIo::new());
        let (store, _) = ShardedStore::open_with(io.clone(), "db", params(), 4).unwrap();
        let a = store.insert_image("a", &scene(0.2)).unwrap();
        let b = store.insert_image("b", &scene(0.5)).unwrap();
        let c = store.insert_image("c", &scene(0.8)).unwrap();
        assert_eq!((a, b, c), (0, 1, 2), "global ids are dense");
        assert_eq!(store.len(), 3);
        store.remove_image(b).unwrap();
        drop(store);

        // Reopen with shards = 0 ("existing store only"): manifest wins.
        let (store, recoveries) = ShardedStore::open_with(io.clone(), "db", params(), 0).unwrap();
        assert_eq!(store.shard_count(), 4);
        assert!(recoveries.iter().all(|r| r.error.is_none()));
        assert_eq!(store.len(), 2);
        assert_eq!(store.image_meta(a).unwrap().unwrap().name, "a");
        assert!(store.image_meta(b).unwrap().is_none(), "removed image is gone");
        // New ids continue after the highest assigned one.
        assert_eq!(store.insert_image("d", &scene(0.35)).unwrap(), 3);

        // A mismatched shard count is refused, not silently rehashed.
        drop(store);
        let err = ShardedStore::open_with(io, "db", params(), 2).unwrap_err();
        assert!(matches!(err, WalrusError::BadParams(_)), "{err}");
    }

    #[test]
    fn legacy_monolithic_directory_is_refused() {
        let io = Arc::new(FaultIo::new());
        let (mono, _) = DurableDatabase::open_with(io.clone(), "db", params()).unwrap();
        drop(mono);
        let err = ShardedStore::open_with(io, "db", params(), 4).unwrap_err();
        assert!(matches!(err, WalrusError::BadParams(_)), "{err}");
    }

    #[test]
    fn rolling_checkpoint_reports_every_healthy_shard() {
        let io = Arc::new(FaultIo::new());
        let (store, _) = ShardedStore::open_with(io, "db", params(), 3).unwrap();
        for i in 0..5 {
            store.insert_image(&format!("img{i}"), &scene(0.1 + 0.15 * i as f32)).unwrap();
        }
        assert!(store.records_since_checkpoint() > 0);
        let reports = ShardedStore::checkpoint(&store).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(store.records_since_checkpoint(), 0);
        for r in &reports {
            assert!(r.last_lsn > 0 || store.shard_health()[r.shard].images == 0);
        }
    }

    #[test]
    fn degraded_store_serves_reads_and_sheds_writes() {
        let io = Arc::new(FaultIo::new());
        let (store, _) = ShardedStore::open_with(io.clone(), "db", params(), 4).unwrap();
        let mut by_shard = vec![Vec::new(); 4];
        for i in 0..8 {
            let id = store.insert_image(&format!("img{i}"), &scene(0.1 + 0.1 * i as f32)).unwrap();
            by_shard[shard_of(id, 4)].push(id);
        }
        drop(store);
        // Destroy shard 2's WAL header: that shard cannot open.
        let victim = 2usize;
        let wal = Path::new("db/shard-002/wal.log");
        let mut bytes = io.file_bytes(wal).unwrap();
        bytes[0] ^= 0xFF;
        io.write(wal, &bytes).unwrap();
        io.fsync(wal).unwrap();

        let (store, recoveries) = ShardedStore::open_with(io, "db", params(), 0).unwrap();
        assert!(recoveries[victim].error.is_some());
        assert_eq!(store.quarantined_shards(), vec![victim]);

        // Reads: degraded status naming the shard, healthy images present.
        let outcome = store.query(&scene(0.1)).unwrap();
        assert_eq!(
            outcome.status,
            ResultStatus::Degraded { shards_unavailable: vec![victim] }
        );
        for &id in &by_shard[0] {
            assert!(store.image_meta(id).unwrap().is_some());
        }
        for &id in &by_shard[victim] {
            assert!(matches!(
                store.image_meta(id),
                Err(WalrusError::ShardUnavailable { shard }) if shard == victim
            ));
        }

        // Writes: shed with the typed error naming the quarantined shard.
        let err = store.insert_image("new", &scene(0.9)).unwrap_err();
        assert!(matches!(err, WalrusError::ShardUnavailable { shard } if shard == victim));
        let err = store.remove_image(by_shard[0][0]).unwrap_err();
        assert!(matches!(err, WalrusError::ShardUnavailable { shard } if shard == victim));

        // Checkpoint still covers the healthy shards.
        let reports = ShardedStore::checkpoint(&store).unwrap();
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.shard != victim));
    }

    #[test]
    fn recover_shard_truncates_damage_and_restores_writes() {
        let io = Arc::new(FaultIo::new());
        let (store, _) = ShardedStore::open_with(io.clone(), "db", params(), 2).unwrap();
        // Find a shard with at least 2 records so mid-log damage exists.
        let mut ids = Vec::new();
        for i in 0..6 {
            ids.push(store.insert_image(&format!("img{i}"), &scene(0.1 + 0.12 * i as f32)).unwrap());
        }
        let victim = (0..2)
            .max_by_key(|&s| ids.iter().filter(|&&id| shard_of(id, 2) == s).count())
            .unwrap();
        drop(store);
        // Flip a byte in the victim's first record while records follow:
        // mid-log corruption, which read_wal refuses.
        let wal_path_string = format!("db/{}/wal.log", shard_dir_name(victim));
        let wal = Path::new(&wal_path_string);
        let mut bytes = io.file_bytes(wal).unwrap();
        let pos = wal::WAL_HEADER_LEN as usize + 20;
        bytes[pos] ^= 0xFF;
        io.write(wal, &bytes).unwrap();
        io.fsync(wal).unwrap();

        let (store, _) = ShardedStore::open_with(io, "db", params(), 0).unwrap();
        assert_eq!(store.quarantined_shards(), vec![victim]);
        let repair = store.recover_shard(victim).unwrap();
        assert_eq!(repair.shard, victim);
        assert!(repair.truncated_bytes > 0, "damaged suffix was dropped");
        assert!(store.quarantined_shards().is_empty());
        // Writes are restored and ids never collide with surviving ones.
        let new_id = store.insert_image("after", &scene(0.77)).unwrap();
        assert!(new_id >= ids.len() - ids.iter().filter(|&&id| shard_of(id, 2) == victim).count());
        assert_eq!(store.image_meta(new_id).unwrap().unwrap().name, "after");
    }
}
