//! Pluggable storage I/O for the durability layer.
//!
//! [`StorageIo`] abstracts the handful of filesystem operations the
//! snapshot writer ([`crate::persist`]) and write-ahead log ([`crate::wal`])
//! perform, so the same durability protocol runs against the real
//! filesystem ([`DiskIo`]) in production and against a deterministic
//! in-memory filesystem with injected faults ([`FaultIo`]) in the
//! crash-consistency test suite.
//!
//! ## Fault model
//!
//! `FaultIo` counts every operation. A [`Fault`] arms one operation index:
//! when that operation executes it either fails outright ([`FaultKind::Error`]),
//! persists only a prefix of the data then fails ([`FaultKind::ShortWrite`]),
//! or silently flips one bit of the written data ([`FaultKind::BitFlip`]).
//! `Error` and `ShortWrite` also *halt* the filesystem — every later
//! operation fails — modelling process death at that instant.
//!
//! A halted (or healthy) filesystem can then be [`FaultIo::crash`]ed with a
//! [`CrashMode`] that decides the fate of data written but never fsynced:
//! dropped, half-persisted (a torn tail), or fully persisted. Renames are
//! atomic but stay *pending* until the containing directory is fsynced;
//! a crash rolls un-fsynced renames back. This is the same discipline a
//! POSIX filesystem holds real databases to.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use walrus_guard::RetryPolicy;

/// The syscall surface the durability layer needs.
///
/// All methods take `&self`: implementations are internally synchronized so
/// one handle can be shared (`Arc<dyn StorageIo>`) across threads.
pub trait StorageIo: Send + Sync + std::fmt::Debug {
    /// Reads the entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates or truncates `path` and writes all of `bytes` (not synced).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` to `path`, creating it if missing (not synced).
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flushes a file's data — or, for a directory, its entries (which
    /// makes completed renames and creations in it durable) — to stable
    /// storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// Atomically replaces `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Truncates `path` to `len` bytes (drops a torn WAL tail).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Deletes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Whether a file exists.
    fn exists(&self, path: &Path) -> bool;
    /// Current length of a file in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Recursively creates a directory.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
}

/// Production implementation over `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct DiskIo;

impl StorageIo for DiskIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        // Opening read-only works for both files and directories on the
        // platforms we target; sync_all flushes data + metadata.
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

/// What an armed fault does when its operation executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with an I/O error and nothing is persisted;
    /// every subsequent operation fails too (process death).
    Error,
    /// A write/append persists only the first half of its bytes, then the
    /// filesystem halts. Non-write operations degrade to [`FaultKind::Error`].
    ShortWrite,
    /// One bit of the written data is flipped; the operation *succeeds*
    /// (silent corruption — only checksums can catch it). On operations
    /// that write no data the fault is a no-op.
    BitFlip,
    /// The operation fails with [`io::ErrorKind::Interrupted`] and nothing
    /// is persisted, but the filesystem stays healthy — the EINTR-style
    /// error a retry loop is entitled to retry.
    Transient,
}

/// An armed fault: fire `kind` on the `at_op`-th operation (0-based).
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    /// 0-based index of the operation to fault.
    pub at_op: usize,
    /// What happens at that operation.
    pub kind: FaultKind,
}

/// A fault scoped to one path prefix: fires on the `at_op`-th operation
/// (0-based) whose path starts with `prefix`, counting only those
/// operations. Lets a multi-shard sweep inject into exactly one shard's
/// files deterministically, regardless of how other shards interleave.
#[derive(Debug, Clone)]
struct PathFault {
    prefix: PathBuf,
    fault: Fault,
}

/// The fate of unsynced data when a [`FaultIo::crash`] is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// All data written since the last fsync is lost; un-fsynced renames
    /// roll back. The adversarial case.
    LoseUnsynced,
    /// Appended-but-unsynced data survives only as a half-length prefix
    /// (a torn tail); un-fsynced renames roll back.
    TornTail,
    /// Everything reached the platters just in time.
    KeepAll,
}

/// All crash modes, for exhaustive sweeps.
pub const ALL_CRASH_MODES: [CrashMode; 3] =
    [CrashMode::LoseUnsynced, CrashMode::TornTail, CrashMode::KeepAll];

#[derive(Debug, Clone, Default)]
struct FileState {
    /// Content guaranteed on stable storage.
    synced: Vec<u8>,
    /// Content as the process sees it (synced + unsynced writes).
    current: Vec<u8>,
}

#[derive(Debug, Default)]
struct FaultState {
    files: BTreeMap<PathBuf, FileState>,
    /// Completed renames not yet made durable by a directory fsync:
    /// `(from, to, file displaced at to)`.
    pending_renames: Vec<(PathBuf, PathBuf, Option<FileState>)>,
    ops: usize,
    faults: Vec<Fault>,
    /// Path-scoped faults, each counted against its own prefix counter.
    path_faults: Vec<PathFault>,
    /// Operations seen so far under each armed prefix.
    prefix_ops: BTreeMap<PathBuf, usize>,
    halted: bool,
}

/// Deterministic in-memory filesystem with fault injection. See the module
/// docs for the model.
#[derive(Debug, Default)]
pub struct FaultIo {
    state: Mutex<FaultState>,
}

fn injected() -> io::Error {
    io::Error::other("injected fault")
}

fn transient() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "injected transient fault")
}

/// Whether an I/O error is transient: safe and worthwhile to retry.
/// `Interrupted` is the canonical case (EINTR; also what
/// [`FaultKind::Transient`] injects).
pub fn is_transient(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::Interrupted
}

fn crashed() -> io::Error {
    io::Error::other("filesystem halted by injected fault")
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("no such file: {}", path.display()))
}

impl FaultIo {
    /// Fresh, empty, healthy filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms (or clears) the fault plan, replacing any armed faults.
    /// Operation counting is *not* reset.
    pub fn set_fault(&self, fault: Option<Fault>) {
        self.state.lock().expect("poisoned").faults = fault.into_iter().collect();
    }

    /// Adds a fault to the plan without clearing those already armed —
    /// lets a test arm a *burst* of transient faults on consecutive
    /// operations to exercise a retry loop end to end.
    pub fn arm_fault(&self, fault: Fault) {
        self.state.lock().expect("poisoned").faults.push(fault);
    }

    /// Operations executed so far (including the faulted one).
    pub fn op_count(&self) -> usize {
        self.state.lock().expect("poisoned").ops
    }

    /// True once a halting fault has fired.
    pub fn is_halted(&self) -> bool {
        self.state.lock().expect("poisoned").halted
    }

    /// Simulates a machine crash and restart: unsynced data meets the fate
    /// chosen by `mode`, the fault plan is cleared, the op counter resets,
    /// and the filesystem is healthy again — ready for recovery to run.
    pub fn crash(&self, mode: CrashMode) {
        let mut st = self.state.lock().expect("poisoned");
        if mode != CrashMode::KeepAll {
            // Roll back renames that were never made durable, newest first.
            while let Some((from, to, displaced)) = st.pending_renames.pop() {
                if let Some(f) = st.files.remove(&to) {
                    st.files.insert(from, f);
                }
                if let Some(d) = displaced {
                    st.files.insert(to, d);
                }
            }
        }
        for f in st.files.values_mut() {
            match mode {
                CrashMode::LoseUnsynced => f.current = f.synced.clone(),
                CrashMode::TornTail => {
                    if f.current.len() > f.synced.len()
                        && f.current.starts_with(&f.synced)
                    {
                        let keep = f.synced.len() + (f.current.len() - f.synced.len()) / 2;
                        f.current.truncate(keep);
                    } else if f.current != f.synced {
                        // In-place rewrite without sync: adversarially revert.
                        f.current = f.synced.clone();
                    }
                }
                CrashMode::KeepAll => {}
            }
            f.synced = f.current.clone();
        }
        st.pending_renames.clear();
        st.faults.clear();
        st.path_faults.clear();
        for counter in st.prefix_ops.values_mut() {
            *counter = 0;
        }
        st.halted = false;
        st.ops = 0;
    }

    /// Flips `mask` bits of the byte at `offset` in a file at rest (both
    /// the synced and visible image) — models bit rot / latent media errors.
    pub fn corrupt_byte(&self, path: &Path, offset: usize, mask: u8) -> bool {
        let mut st = self.state.lock().expect("poisoned");
        match st.files.get_mut(path) {
            Some(f) if offset < f.current.len() => {
                f.current[offset] ^= mask;
                if offset < f.synced.len() {
                    f.synced[offset] ^= mask;
                }
                true
            }
            _ => false,
        }
    }

    /// The current visible bytes of a file, if it exists.
    pub fn file_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        self.state.lock().expect("poisoned").files.get(path).map(|f| f.current.clone())
    }

    /// Paths of all files, sorted.
    pub fn file_names(&self) -> Vec<PathBuf> {
        self.state.lock().expect("poisoned").files.keys().cloned().collect()
    }

    /// Arms a fault scoped to `prefix`: it fires on the `fault.at_op`-th
    /// operation (0-based) whose path starts with `prefix`, counting only
    /// those operations. Multi-shard fault sweeps use this to hit exactly
    /// one shard's directory no matter how other shards' I/O interleaves.
    /// Accumulates like [`FaultIo::arm_fault`]; cleared by
    /// [`FaultIo::crash`] and [`FaultIo::clear_path_faults`].
    pub fn arm_fault_at_path(&self, prefix: impl Into<PathBuf>, fault: Fault) {
        let mut st = self.state.lock().expect("poisoned");
        let prefix = prefix.into();
        st.prefix_ops.entry(prefix.clone()).or_insert(0);
        st.path_faults.push(PathFault { prefix, fault });
    }

    /// Clears all path-scoped faults and their prefix counters.
    pub fn clear_path_faults(&self) {
        let mut st = self.state.lock().expect("poisoned");
        st.path_faults.clear();
        st.prefix_ops.clear();
    }

    /// Operations executed so far whose path starts with `prefix`. Only
    /// counted while a fault is (or was) armed on that prefix.
    pub fn op_count_at_path(&self, prefix: impl AsRef<Path>) -> usize {
        let st = self.state.lock().expect("poisoned");
        st.prefix_ops.get(prefix.as_ref()).copied().unwrap_or(0)
    }

    /// Checks the armed faults before an operation on `path` runs; returns
    /// the kind to apply *during* this operation, if any. Global faults
    /// (by absolute op index) are checked first, then path-scoped ones.
    fn begin_op(st: &mut FaultState, path: &Path) -> io::Result<Option<FaultKind>> {
        if st.halted {
            return Err(crashed());
        }
        let idx = st.ops;
        st.ops += 1;
        let mut hit = st.faults.iter().find(|f| f.at_op == idx).map(|f| f.kind);
        // Advance every matching prefix counter even when a global fault
        // already fired, so prefix indices stay stable across fault plans.
        let prefixes: Vec<PathBuf> = st
            .prefix_ops
            .keys()
            .filter(|prefix| path.starts_with(prefix))
            .cloned()
            .collect();
        for prefix in prefixes {
            let pidx = st.prefix_ops.get_mut(&prefix).expect("armed prefix");
            let at = *pidx;
            *pidx += 1;
            if hit.is_none() {
                hit = st
                    .path_faults
                    .iter()
                    .find(|pf| pf.prefix == prefix && pf.fault.at_op == at)
                    .map(|pf| pf.fault.kind);
            }
        }
        match hit {
            Some(FaultKind::Error) => {
                st.halted = true;
                Err(injected())
            }
            Some(FaultKind::Transient) => Err(transient()),
            Some(k) => Ok(Some(k)),
            None => Ok(None),
        }
    }

    /// [`FaultIo::begin_op`] for operations that write no data:
    /// `ShortWrite` degrades to `Error` (and halts), `BitFlip` has nothing
    /// to corrupt and passes through.
    fn begin_non_write_op(st: &mut FaultState, path: &Path) -> io::Result<()> {
        match Self::begin_op(st, path)? {
            Some(FaultKind::BitFlip) | None => Ok(()),
            Some(_) => {
                st.halted = true;
                Err(injected())
            }
        }
    }
}

impl StorageIo for FaultIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut st = self.state.lock().expect("poisoned");
        Self::begin_non_write_op(&mut st, path)?;
        st.files.get(path).map(|f| f.current.clone()).ok_or_else(|| not_found(path))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock().expect("poisoned");
        let fault = Self::begin_op(&mut st, path)?;
        let entry = st.files.entry(path.to_path_buf()).or_default();
        match fault {
            None => {
                entry.current = bytes.to_vec();
                Ok(())
            }
            Some(FaultKind::ShortWrite) => {
                entry.current = bytes[..bytes.len() / 2].to_vec();
                st.halted = true;
                Err(injected())
            }
            Some(FaultKind::BitFlip) => {
                let mut data = bytes.to_vec();
                if !data.is_empty() {
                    let pos = data.len() / 2;
                    data[pos] ^= 0x10;
                }
                entry.current = data;
                Ok(())
            }
            Some(FaultKind::Error) | Some(FaultKind::Transient) => {
                unreachable!("handled in begin_op")
            }
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock().expect("poisoned");
        let fault = Self::begin_op(&mut st, path)?;
        let entry = st.files.entry(path.to_path_buf()).or_default();
        match fault {
            None => {
                entry.current.extend_from_slice(bytes);
                Ok(())
            }
            Some(FaultKind::ShortWrite) => {
                entry.current.extend_from_slice(&bytes[..bytes.len() / 2]);
                st.halted = true;
                Err(injected())
            }
            Some(FaultKind::BitFlip) => {
                let mut data = bytes.to_vec();
                if !data.is_empty() {
                    let pos = data.len() / 2;
                    data[pos] ^= 0x10;
                }
                entry.current.extend_from_slice(&data);
                Ok(())
            }
            Some(FaultKind::Error) | Some(FaultKind::Transient) => {
                unreachable!("handled in begin_op")
            }
        }
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().expect("poisoned");
        Self::begin_non_write_op(&mut st, path)?;
        if let Some(f) = st.files.get_mut(path) {
            f.synced = f.current.clone();
            return Ok(());
        }
        // Directory fsync: make renames targeting this directory durable.
        let dir = path.to_path_buf();
        st.pending_renames.retain(|(_, to, _)| to.parent() != Some(dir.as_path()));
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.state.lock().expect("poisoned");
        // A rename is attributed to its destination; checkpoint renames
        // stay within one shard directory, so either path would do.
        Self::begin_non_write_op(&mut st, to)?;
        let f = st.files.remove(from).ok_or_else(|| not_found(from))?;
        let displaced = st.files.insert(to.to_path_buf(), f);
        st.pending_renames.push((from.to_path_buf(), to.to_path_buf(), displaced));
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut st = self.state.lock().expect("poisoned");
        Self::begin_non_write_op(&mut st, path)?;
        let f = st.files.get_mut(path).ok_or_else(|| not_found(path))?;
        f.current.truncate(len as usize);
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().expect("poisoned");
        Self::begin_non_write_op(&mut st, path)?;
        st.files.remove(path).ok_or_else(|| not_found(path))?;
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.state.lock().expect("poisoned").files.contains_key(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        let st = self.state.lock().expect("poisoned");
        st.files.get(path).map(|f| f.current.len() as u64).ok_or_else(|| not_found(path))
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        // Directories are implicit in the in-memory model.
        let mut st = self.state.lock().expect("poisoned");
        Self::begin_non_write_op(&mut st, path)?;
        Ok(())
    }
}

/// A [`StorageIo`] decorator that retries **idempotent** operations on
/// transient errors with the bounded exponential backoff of a
/// [`RetryPolicy`].
///
/// `append` is deliberately *not* retried here: a failed append may have
/// persisted a partial record, and blindly re-appending would corrupt the
/// middle of the WAL (which recovery treats as unrecoverable corruption,
/// not a torn tail). The WAL layer retries appends itself, truncating the
/// tail back to the last committed length between attempts. `rename` is
/// also passed through — it sits inside the atomic-checkpoint protocol,
/// which has its own failure semantics.
#[derive(Debug)]
pub struct RetryIo {
    inner: Arc<dyn StorageIo>,
    policy: RetryPolicy,
}

impl RetryIo {
    /// Wraps `inner`, retrying per `policy`.
    pub fn new(inner: Arc<dyn StorageIo>, policy: RetryPolicy) -> Self {
        Self { inner, policy }
    }

    /// The wrapped I/O layer.
    pub fn inner(&self) -> &Arc<dyn StorageIo> {
        &self.inner
    }

    /// The active retry policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }
}

impl StorageIo for RetryIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.policy.run(|| self.inner.read(path), is_transient)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.policy.run(|| self.inner.write(path, bytes), is_transient)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        // Not idempotent — see the type docs. One attempt only.
        self.inner.append(path, bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        self.policy.run(|| self.inner.fsync(path), is_transient)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.policy.run(|| self.inner.truncate(path, len), is_transient)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.policy.run(|| self.inner.remove(path), is_transient)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.policy.run(|| self.inner.file_len(path), is_transient)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.policy.run(|| self.inner.create_dir_all(path), is_transient)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn p(s: &str) -> &Path {
        Path::new(s)
    }

    #[test]
    fn write_read_round_trip() {
        let fs = FaultIo::new();
        fs.write(p("a"), b"hello").unwrap();
        assert_eq!(fs.read(p("a")).unwrap(), b"hello");
        fs.append(p("a"), b" world").unwrap();
        assert_eq!(fs.read(p("a")).unwrap(), b"hello world");
        assert_eq!(fs.file_len(p("a")).unwrap(), 11);
        assert!(fs.exists(p("a")));
        assert!(!fs.exists(p("b")));
    }

    #[test]
    fn crash_drops_unsynced_data() {
        let fs = FaultIo::new();
        fs.write(p("a"), b"synced").unwrap();
        fs.fsync(p("a")).unwrap();
        fs.append(p("a"), b"-unsynced").unwrap();
        fs.crash(CrashMode::LoseUnsynced);
        assert_eq!(fs.read(p("a")).unwrap(), b"synced");
    }

    #[test]
    fn torn_tail_keeps_half_the_unsynced_suffix() {
        let fs = FaultIo::new();
        fs.write(p("a"), b"base").unwrap();
        fs.fsync(p("a")).unwrap();
        fs.append(p("a"), b"0123456789").unwrap();
        fs.crash(CrashMode::TornTail);
        assert_eq!(fs.read(p("a")).unwrap(), b"base01234");
    }

    #[test]
    fn unsynced_rename_rolls_back_on_crash() {
        let fs = FaultIo::new();
        fs.write(p("dir/old"), b"old").unwrap();
        fs.fsync(p("dir/old")).unwrap();
        fs.write(p("dir/tmp"), b"new").unwrap();
        fs.fsync(p("dir/tmp")).unwrap();
        fs.rename(p("dir/tmp"), p("dir/old")).unwrap();
        // No directory fsync: the rename is not durable.
        fs.crash(CrashMode::LoseUnsynced);
        assert_eq!(fs.read(p("dir/old")).unwrap(), b"old");
        assert_eq!(fs.read(p("dir/tmp")).unwrap(), b"new");
    }

    #[test]
    fn dir_fsync_makes_rename_durable() {
        let fs = FaultIo::new();
        fs.write(p("dir/old"), b"old").unwrap();
        fs.fsync(p("dir/old")).unwrap();
        fs.write(p("dir/tmp"), b"new").unwrap();
        fs.fsync(p("dir/tmp")).unwrap();
        fs.rename(p("dir/tmp"), p("dir/old")).unwrap();
        fs.fsync(p("dir")).unwrap();
        fs.crash(CrashMode::LoseUnsynced);
        assert_eq!(fs.read(p("dir/old")).unwrap(), b"new");
        assert!(!fs.exists(p("dir/tmp")));
    }

    #[test]
    fn error_fault_halts_the_filesystem() {
        let fs = FaultIo::new();
        fs.write(p("a"), b"x").unwrap();
        fs.set_fault(Some(Fault { at_op: 1, kind: FaultKind::Error }));
        assert!(fs.write(p("a"), b"y").is_err());
        assert!(fs.is_halted());
        assert!(fs.read(p("a")).is_err(), "all ops fail after halt");
        fs.crash(CrashMode::LoseUnsynced);
        // Nothing was ever synced; adversarial crash wipes the write.
        assert_eq!(fs.read(p("a")).unwrap(), b"");
    }

    #[test]
    fn short_write_persists_a_prefix() {
        let fs = FaultIo::new();
        fs.set_fault(Some(Fault { at_op: 0, kind: FaultKind::ShortWrite }));
        assert!(fs.write(p("a"), b"0123456789").is_err());
        fs.crash(CrashMode::KeepAll);
        assert_eq!(fs.read(p("a")).unwrap(), b"01234");
    }

    #[test]
    fn bit_flip_is_silent() {
        let fs = FaultIo::new();
        fs.set_fault(Some(Fault { at_op: 0, kind: FaultKind::BitFlip }));
        fs.write(p("a"), b"AAAA").unwrap(); // succeeds!
        assert!(!fs.is_halted());
        let got = fs.read(p("a")).unwrap();
        assert_ne!(got, b"AAAA");
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn corrupt_byte_at_rest() {
        let fs = FaultIo::new();
        fs.write(p("a"), b"zzzz").unwrap();
        fs.fsync(p("a")).unwrap();
        assert!(fs.corrupt_byte(p("a"), 2, 0x01));
        assert_eq!(fs.read(p("a")).unwrap(), b"zz{z");
        assert!(!fs.corrupt_byte(p("a"), 99, 0x01));
    }

    #[test]
    fn transient_fault_fails_once_without_halting() {
        let fs = FaultIo::new();
        fs.write(p("a"), b"x").unwrap();
        fs.set_fault(Some(Fault { at_op: 1, kind: FaultKind::Transient }));
        let err = fs.write(p("a"), b"y").unwrap_err();
        assert!(is_transient(&err));
        assert!(!fs.is_halted());
        // Nothing was persisted by the failed write, and the next try works.
        assert_eq!(fs.read(p("a")).unwrap(), b"x");
        fs.write(p("a"), b"y").unwrap();
        assert_eq!(fs.read(p("a")).unwrap(), b"y");
    }

    #[test]
    fn arm_fault_accumulates_a_burst() {
        let fs = FaultIo::new();
        fs.arm_fault(Fault { at_op: 0, kind: FaultKind::Transient });
        fs.arm_fault(Fault { at_op: 1, kind: FaultKind::Transient });
        assert!(fs.write(p("a"), b"x").is_err());
        assert!(fs.write(p("a"), b"x").is_err());
        fs.write(p("a"), b"x").unwrap();
    }

    #[test]
    fn retry_io_rides_out_transient_bursts() {
        let fs = Arc::new(FaultIo::new());
        let retry = RetryIo::new(
            fs.clone(),
            RetryPolicy { max_attempts: 3, base_delay: std::time::Duration::ZERO, max_delay: std::time::Duration::ZERO },
        );
        // Two consecutive transient faults: the third attempt succeeds.
        fs.arm_fault(Fault { at_op: 0, kind: FaultKind::Transient });
        fs.arm_fault(Fault { at_op: 1, kind: FaultKind::Transient });
        retry.write(p("a"), b"persisted").unwrap();
        assert_eq!(retry.read(p("a")).unwrap(), b"persisted");
    }

    #[test]
    fn retry_io_gives_up_past_the_attempt_budget() {
        let fs = Arc::new(FaultIo::new());
        let retry = RetryIo::new(
            fs.clone(),
            RetryPolicy { max_attempts: 2, base_delay: std::time::Duration::ZERO, max_delay: std::time::Duration::ZERO },
        );
        for op in 0..2 {
            fs.arm_fault(Fault { at_op: op, kind: FaultKind::Transient });
        }
        let err = retry.write(p("a"), b"data").unwrap_err();
        assert!(is_transient(&err));
        assert!(!fs.exists(p("a")));
    }

    #[test]
    fn retry_io_does_not_retry_permanent_errors() {
        let fs = Arc::new(FaultIo::new());
        let retry = RetryIo::new(fs.clone(), RetryPolicy::default());
        fs.set_fault(Some(Fault { at_op: 0, kind: FaultKind::Error }));
        assert!(retry.write(p("a"), b"data").is_err());
        assert!(fs.is_halted(), "halting error must not be retried into");
    }

    #[test]
    fn disk_io_round_trip() {
        let dir = std::env::temp_dir().join("walrus_storage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let io = DiskIo;
        let a = dir.join("a.bin");
        let b = dir.join("b.bin");
        io.write(&a, b"alpha").unwrap();
        io.append(&a, b"beta").unwrap();
        io.fsync(&a).unwrap();
        assert_eq!(io.read(&a).unwrap(), b"alphabeta");
        io.rename(&a, &b).unwrap();
        io.fsync(&dir).unwrap();
        assert!(!io.exists(&a));
        assert_eq!(io.file_len(&b).unwrap(), 9);
        io.truncate(&b, 5).unwrap();
        assert_eq!(io.read(&b).unwrap(), b"alpha");
        io.remove(&b).unwrap();
        assert!(!io.exists(&b));
    }
}
