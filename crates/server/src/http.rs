//! Hand-rolled HTTP/1.1 on blocking `std::io` streams.
//!
//! The container has no async runtime and no HTTP crates, so this module
//! implements exactly the slice of HTTP/1.1 the WALRUS service needs — and
//! treats everything outside that slice as hostile:
//!
//! * strict size limits *before* buffering: request line, total head bytes,
//!   header count, and declared body length are all capped, so a hostile
//!   peer cannot make the server allocate unboundedly;
//! * `Content-Length` framing only — `Transfer-Encoding` (chunked) requests
//!   are rejected with `411 Length Required` instead of being mis-framed;
//! * keep-alive with pipelined-leftover handling (bytes after one request's
//!   body are kept for the next parse);
//! * slowloris defense: reads tick on a short socket timeout and each
//!   request must *complete* within a wall-clock budget measured from its
//!   first byte — trickling one byte per poll does not reset the clock.
//!
//! Parsing never panics on arbitrary bytes; every malformed input maps to
//! either a 4xx [`ParseError::Bad`] (answerable) or a clean close.

use std::io::{Read, Write};
use std::time::Duration;

use walrus_trace::Clock;

/// Hard limits applied while parsing one request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes in the request line (method + target + version).
    pub max_request_line: usize,
    /// Maximum bytes in the whole head (request line + headers).
    pub max_head_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
    /// Maximum declared `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_request_line: 8 << 10,
            max_head_bytes: 16 << 10,
            max_headers: 64,
            // PPM bodies are the big legitimate payload; 64 MiB covers a
            // batch of generous images while still bounding allocation.
            max_body_bytes: 64 << 20,
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path component of the target (no query string).
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header fields with lowercased names, in order.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` framed; empty when absent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }
}

/// Why [`Conn::read_request`] did not produce a request.
#[derive(Debug)]
pub enum ParseError {
    /// The peer is gone (clean EOF at a request boundary) or went idle past
    /// the keep-alive window: close without a response.
    Closed,
    /// Socket-level failure: close without a response.
    Io(std::io::Error),
    /// Protocol violation: answer with `status` and close (framing is no
    /// longer trustworthy after a malformed request).
    Bad {
        /// HTTP status to answer with.
        status: u16,
        /// Human-readable reason included in the response body.
        message: String,
    },
}

fn bad(status: u16, message: impl Into<String>) -> ParseError {
    ParseError::Bad { status, message: message.into() }
}

/// Read-side pacing knobs for one `read_request` call.
pub struct ReadOpts<'a> {
    /// How long an idle keep-alive connection may wait for its next request.
    pub idle_timeout: Duration,
    /// Wall-clock budget for receiving one complete request, measured from
    /// its first byte (the slowloris bound).
    pub read_timeout: Duration,
    /// Checked on every read tick; when it returns true the connection
    /// stops waiting (idle connections close, half-received requests get
    /// `503`), which is what lets graceful shutdown drain quickly.
    pub stopping: &'a dyn Fn() -> bool,
    /// Time source for the idle/read deadlines. Wall-clock ticks still come
    /// from the socket's poll timeout; this clock only decides whether a
    /// budget has elapsed, so tests can expire reads deterministically by
    /// advancing a [`TestClock`](walrus_trace::TestClock).
    pub clock: &'a dyn Clock,
}

enum Fill {
    /// New bytes arrived.
    Data,
    /// Clean EOF from the peer.
    Eof,
    /// Read timed out (the socket's short poll interval) — time to check
    /// deadlines and the stopping flag.
    Tick,
}

/// Outcome of one [`parse_request_bytes`] attempt over a byte buffer.
///
/// This is the *pure* core of the parser: no IO, no clock, no state beyond
/// the bytes themselves. The blocking [`Conn`] and the event-driven reactor
/// backend both call it in a loop as bytes arrive, so a request is parsed
/// identically — byte for byte, error message for error message — whichever
/// serving core received it.
#[derive(Debug)]
pub enum ParseStep {
    /// A complete request; `consumed` bytes of the buffer belong to it
    /// (head + body). Bytes past `consumed` are pipelined data for the
    /// next request.
    Ready {
        req: Request,
        consumed: usize,
    },
    /// More bytes are needed. `in_body` distinguishes a half-received head
    /// from a half-received body, so timeout/EOF paths can report
    /// "request head" vs "request body" exactly as before.
    Incomplete {
        in_body: bool,
    },
    /// Protocol violation: answer with `status` and close.
    Reject {
        status: u16,
        message: String,
    },
}

fn reject(status: u16, message: impl Into<String>) -> ParseStep {
    ParseStep::Reject { status, message: message.into() }
}

/// Attempts to parse one request from the front of `buf`, enforcing
/// `limits`. Pure and restartable: callers re-invoke with a longer buffer
/// until it stops returning [`ParseStep::Incomplete`].
pub fn parse_request_bytes(buf: &[u8], limits: &HttpLimits) -> ParseStep {
    // Phase 1: the head (request line + headers) must be complete.
    let Some((head_len, body_start)) = find_head_end(buf) else {
        if buf.len() > limits.max_head_bytes {
            return reject(431, "request head exceeds limit");
        }
        return ParseStep::Incomplete { in_body: false };
    };

    let head = match String::from_utf8(buf[..head_len].to_vec()) {
        Ok(head) => head,
        Err(_) => return reject(400, "request head is not UTF-8"),
    };
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    if request_line.len() > limits.max_request_line {
        return reject(414, "request line exceeds limit");
    }
    let mut parts = request_line.split_whitespace();
    let (method, target, version) =
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v), None) => (m, t, v),
            _ => return reject(400, "malformed request line"),
        };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return reject(400, "malformed method token");
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return reject(505, "unsupported HTTP version"),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= limits.max_headers {
            return reject(431, "too many header fields");
        }
        let Some((name, value)) = line.split_once(':') else {
            return reject(400, "malformed header field");
        };
        let name = name.trim();
        if name.is_empty() || name.contains(char::is_whitespace) {
            return reject(400, "malformed header name");
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // Framing. `Transfer-Encoding` of any kind is out of scope: answer
    // 411 instead of guessing where the body ends.
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return reject(411, "transfer-encoding not supported; use content-length");
    }
    let mut content_length = 0usize;
    let mut saw_length = None::<&str>;
    for (k, v) in &headers {
        if k == "content-length" {
            match saw_length {
                None => saw_length = Some(v),
                Some(prev) if prev == v => {}
                Some(_) => return reject(400, "conflicting content-length fields"),
            }
            content_length = match v.parse::<usize>() {
                Ok(n) => n,
                Err(_) => return reject(400, "invalid content-length"),
            };
        }
    }
    if content_length > limits.max_body_bytes {
        return reject(413, "declared body exceeds limit");
    }

    // Phase 2: the body must be complete. Bytes past it stay in the buffer
    // for the next request on this connection.
    if buf.len() - body_start < content_length {
        return ParseStep::Incomplete { in_body: true };
    }
    let body = buf[body_start..body_start + content_length].to_vec();

    // `Connection: close` wins; otherwise 1.1 defaults open, 1.0
    // defaults closed.
    let conn_header = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match conn_header.as_deref() {
        Some(v) if v.contains("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        _ => http11,
    };

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target, Vec::new()),
    };

    ParseStep::Ready {
        req: Request {
            method: method.to_string(),
            path: percent_decode(path),
            query,
            headers,
            body,
            keep_alive,
        },
        consumed: body_start + content_length,
    }
}

/// A buffered HTTP connection over any blocking byte stream. The stream
/// should have a short read timeout configured (see [`Conn::read_request`]'s
/// tick handling); `TcpStream::set_read_timeout` is the production path and
/// in-memory streams work for tests.
pub struct Conn<S: Read + Write> {
    stream: S,
    buf: Vec<u8>,
}

impl<S: Read + Write> Conn<S> {
    pub fn new(stream: S) -> Self {
        Conn { stream, buf: Vec::new() }
    }

    fn fill(&mut self) -> Result<Fill, ParseError> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(Fill::Eof),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(Fill::Data)
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(Fill::Tick)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(Fill::Tick),
            Err(e) => Err(ParseError::Io(e)),
        }
    }

    /// Reads and parses the next request, enforcing `limits` and the pacing
    /// in `opts`. On `Err(Bad { .. })` the caller should answer and close.
    ///
    /// This is a thin IO/pacing loop around [`parse_request_bytes`]; the
    /// reactor backend wraps the same function with epoll-driven fills, so
    /// both serving cores share one parser.
    pub fn read_request(
        &mut self,
        limits: &HttpLimits,
        opts: &ReadOpts<'_>,
    ) -> Result<Request, ParseError> {
        let started = opts.clock.now_nanos();
        let elapsed =
            || Duration::from_nanos(opts.clock.now_nanos().saturating_sub(started));
        loop {
            let in_body = match parse_request_bytes(&self.buf, limits) {
                ParseStep::Ready { req, consumed } => {
                    self.buf.drain(..consumed);
                    return Ok(req);
                }
                ParseStep::Reject { status, message } => {
                    return Err(ParseError::Bad { status, message });
                }
                ParseStep::Incomplete { in_body } => in_body,
            };
            match self.fill()? {
                Fill::Data => continue,
                Fill::Eof => {
                    return if self.buf.is_empty() {
                        Err(ParseError::Closed)
                    } else if in_body {
                        Err(bad(400, "connection closed mid-body"))
                    } else {
                        Err(bad(400, "connection closed mid-request"))
                    };
                }
                Fill::Tick => {
                    if (opts.stopping)() {
                        return if self.buf.is_empty() {
                            Err(ParseError::Closed)
                        } else {
                            Err(bad(503, "server shutting down"))
                        };
                    }
                    if self.buf.is_empty() {
                        if elapsed() >= opts.idle_timeout {
                            return Err(ParseError::Closed);
                        }
                    } else if elapsed() >= opts.read_timeout {
                        return Err(if in_body {
                            bad(408, "timed out receiving request body")
                        } else {
                            bad(408, "timed out receiving request head")
                        });
                    }
                }
            }
        }
    }

    /// Serializes `resp` to the peer.
    pub fn write_response(&mut self, resp: &Response) -> std::io::Result<()> {
        let bytes = encode_response(resp);
        self.stream.write_all(&bytes)?;
        self.stream.flush()
    }

    /// The underlying stream (tests use this to inspect written bytes).
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }
}

/// Finds the end of the head: returns `(head_len, body_start)` for the first
/// `\r\n\r\n` (or bare `\n\n`) terminator. Shared with the client's response
/// parser.
pub(crate) fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    for i in 0..buf.len() {
        let rest = &buf[i..];
        if rest.starts_with(b"\r\n\r\n") {
            return Some((i, i + 4));
        }
        if rest.starts_with(b"\n\n") {
            return Some((i, i + 2));
        }
    }
    None
}

fn parse_query(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Minimal `%XX` + `+` decoding; malformed escapes pass through literally
/// rather than erroring (they will simply fail to match any route/param).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(bytes[i]);
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Serializes a response to wire bytes (status line, framing headers,
/// body). Shared by the blocking [`Conn`] writer and the reactor's
/// buffered write path so the bytes on the wire are identical.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
        if resp.close { "close" } else { "keep-alive" },
    )
    .into_bytes();
    out.extend_from_slice(&resp.body);
    out
}

/// One response. `close` is set by the connection loop, not the router.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    pub close: bool,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Response { status, content_type: "application/json", body: body.into_bytes(), close: false }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            close: false,
        }
    }

    /// A JSON error body `{"error": ...}` with the given status.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(status, format!("{{\"error\":{}}}", json_string(message)))
    }
}

/// Reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        206 => "Partial Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Serializes `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory stream: reads from a script, EOF at the end, collects
    /// writes.
    struct MemStream {
        input: std::io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl MemStream {
        fn new(input: &[u8]) -> Self {
            MemStream { input: std::io::Cursor::new(input.to_vec()), output: Vec::new() }
        }
    }

    impl Read for MemStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for MemStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn opts() -> ReadOpts<'static> {
        ReadOpts {
            idle_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(5),
            stopping: &|| false,
            clock: &walrus_trace::MonotonicClock,
        }
    }

    fn read(input: &[u8]) -> Result<Request, ParseError> {
        Conn::new(MemStream::new(input)).read_request(&HttpLimits::default(), &opts())
    }

    #[test]
    fn parses_get_with_query() {
        let req = read(b"GET /query?k=5&timeout_ms=100 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/query");
        assert_eq!(req.query_param("k"), Some("5"));
        assert_eq!(req.query_param("timeout_ms"), Some("100"));
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_and_pipelined_leftover() {
        let mut conn = Conn::new(MemStream::new(
            b"POST /ingest HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /healthz HTTP/1.1\r\n\r\n",
        ));
        let limits = HttpLimits::default();
        let first = conn.read_request(&limits, &opts()).unwrap();
        assert_eq!(first.body, b"hello");
        let second = conn.read_request(&limits, &opts()).unwrap();
        assert_eq!(second.path, "/healthz");
    }

    #[test]
    fn connection_close_and_http10_semantics() {
        let req = read(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = read(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = read(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn rejects_chunked_cleanly() {
        let err = read(b"POST /ingest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert!(matches!(err, Err(ParseError::Bad { status: 411, .. })));
    }

    #[test]
    fn rejects_oversized_head_and_line() {
        let mut input = b"GET /".to_vec();
        input.extend_from_slice(&vec![b'a'; 20 << 10]);
        input.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert!(matches!(read(&input), Err(ParseError::Bad { status: 431, .. })));

        // A long-but-under-head-cap request line trips the line limit.
        let mut input = b"GET /".to_vec();
        input.extend_from_slice(&vec![b'a'; 10 << 10]);
        input.extend_from_slice(b" HTTP/1.1\r\nx: y\r\n\r\n");
        assert!(matches!(read(&input), Err(ParseError::Bad { status: 414, .. })));
    }

    #[test]
    fn rejects_header_bomb() {
        let mut input = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..100 {
            input.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        input.extend_from_slice(b"\r\n");
        assert!(matches!(read(&input), Err(ParseError::Bad { status: 431, .. })));
    }

    #[test]
    fn rejects_bad_framing() {
        assert!(matches!(
            read(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ParseError::Bad { status: 400, .. })
        ));
        assert!(matches!(
            read(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"),
            Err(ParseError::Bad { status: 400, .. })
        ));
        assert!(matches!(
            read(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabcd"),
            Err(ParseError::Bad { status: 400, .. })
        ));
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(matches!(read(huge.as_bytes()), Err(ParseError::Bad { status: 413, .. })));
    }

    #[test]
    fn truncated_body_is_a_clean_400() {
        assert!(matches!(
            read(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ParseError::Bad { status: 400, .. })
        ));
    }

    #[test]
    fn empty_connection_closes_cleanly() {
        assert!(matches!(read(b""), Err(ParseError::Closed)));
        assert!(matches!(read(b"GET / HT"), Err(ParseError::Bad { status: 400, .. })));
    }

    #[test]
    fn rejects_garbage_lines() {
        assert!(matches!(read(b"\x00\x01\x02\r\n\r\n"), Err(ParseError::Bad { .. })));
        assert!(matches!(
            read(b"GET / HTTP/2.0\r\n\r\n"),
            Err(ParseError::Bad { status: 505, .. })
        ));
        assert!(matches!(
            read(b"GET / HTTP/1.1 extra\r\n\r\n"),
            Err(ParseError::Bad { status: 400, .. })
        ));
        assert!(matches!(
            read(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ParseError::Bad { status: 400, .. })
        ));
    }

    #[test]
    fn decodes_query_escapes() {
        let req = read(b"GET /query?name=a%20b+c&flag HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.query_param("name"), Some("a b c"));
        assert_eq!(req.query_param("flag"), Some(""));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    /// Stream that yields scripted chunks, then endless `WouldBlock` ticks —
    /// each tick advancing a [`TestClock`] — so read-deadline behavior is
    /// exercised without any real waiting.
    struct TickingStream {
        chunks: std::collections::VecDeque<Vec<u8>>,
        clock: std::sync::Arc<walrus_trace::TestClock>,
        tick: Duration,
    }

    impl Read for TickingStream {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.chunks.pop_front() {
                Some(chunk) => {
                    buf[..chunk.len()].copy_from_slice(&chunk);
                    Ok(chunk.len())
                }
                None => {
                    self.clock.advance(self.tick);
                    Err(std::io::ErrorKind::WouldBlock.into())
                }
            }
        }
    }

    impl Write for TickingStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn slowloris_hits_408_on_the_injected_clock() {
        let clock = walrus_trace::TestClock::new();
        let stream = TickingStream {
            chunks: [b"GET / HT".to_vec()].into(),
            clock: clock.clone(),
            tick: Duration::from_secs(1),
        };
        let opts = ReadOpts {
            idle_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(5),
            stopping: &|| false,
            clock: clock.as_ref(),
        };
        let err = Conn::new(stream).read_request(&HttpLimits::default(), &opts);
        assert!(matches!(err, Err(ParseError::Bad { status: 408, .. })), "{err:?}");
        // The deadline fired exactly when the test clock crossed it —
        // 5 scripted ticks — not after any wall-clock delay.
        assert_eq!(clock.elapsed(), Duration::from_secs(5));
    }

    #[test]
    fn idle_connection_closes_on_the_injected_clock() {
        let clock = walrus_trace::TestClock::new();
        let stream = TickingStream {
            chunks: [].into(),
            clock: clock.clone(),
            tick: Duration::from_secs(2),
        };
        let opts = ReadOpts {
            idle_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(5),
            stopping: &|| false,
            clock: clock.as_ref(),
        };
        let err = Conn::new(stream).read_request(&HttpLimits::default(), &opts);
        assert!(matches!(err, Err(ParseError::Closed)), "{err:?}");
        assert_eq!(clock.elapsed(), Duration::from_secs(10));
    }

    /// The pure parser must be restartable: feeding any prefix of a valid
    /// request reports `Incomplete` (never a spurious reject), with the
    /// head/body phase flag flipping exactly at the head terminator — the
    /// contract the reactor's byte-at-a-time arrivals rely on.
    #[test]
    fn incremental_parse_is_restartable() {
        let full: &[u8] = b"POST /ingest?name=x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let limits = HttpLimits::default();
        let head_end = find_head_end(full).unwrap().1;
        for cut in 0..full.len() {
            match parse_request_bytes(&full[..cut], &limits) {
                ParseStep::Incomplete { in_body } => {
                    assert_eq!(in_body, cut >= head_end, "cut={cut}");
                }
                ParseStep::Reject { status, .. } => panic!("prefix {cut} rejected {status}"),
                ParseStep::Ready { .. } => panic!("prefix {cut} cannot be complete"),
            }
        }
        match parse_request_bytes(full, &limits) {
            ParseStep::Ready { req, consumed } => {
                assert_eq!(consumed, full.len());
                assert_eq!(req.body, b"hello");
                assert_eq!(req.query_param("name"), Some("x"));
            }
            other => panic!("{other:?}"),
        }
    }

    /// `consumed` must stop exactly at the request boundary so pipelined
    /// bytes stay available for the next parse.
    #[test]
    fn pure_parser_reports_pipelined_boundary() {
        let full: &[u8] =
            b"POST /ingest HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /healthz HTTP/1.1\r\n\r\n";
        let limits = HttpLimits::default();
        let ParseStep::Ready { req, consumed } = parse_request_bytes(full, &limits) else {
            panic!("first request must parse");
        };
        assert_eq!(req.body, b"hello");
        let ParseStep::Ready { req, consumed: rest } =
            parse_request_bytes(&full[consumed..], &limits)
        else {
            panic!("second request must parse");
        };
        assert_eq!(req.path, "/healthz");
        assert_eq!(consumed + rest, full.len());
    }

    #[test]
    fn encode_response_matches_write_response() {
        let mut resp = Response::json(206, "{\"x\":1}".to_string());
        resp.close = false;
        let mut conn = Conn::new(MemStream::new(b""));
        conn.write_response(&resp).unwrap();
        assert_eq!(conn.stream_mut().output, encode_response(&resp));
    }

    #[test]
    fn writes_response_with_framing() {
        let mut conn = Conn::new(MemStream::new(b""));
        let mut resp = Response::text(200, "ok");
        resp.close = true;
        conn.write_response(&resp).unwrap();
        let out = String::from_utf8(conn.stream_mut().output.clone()).unwrap();
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.contains("Content-Length: 2\r\n"));
        assert!(out.contains("Connection: close\r\n"));
        assert!(out.ends_with("\r\n\r\nok"));
    }
}
